//! Internal hyperparameter probe for the scaled experiment family.
//! Not part of the reproduction surface; used to calibrate the
//! scaled-run learning rates (see EXPERIMENTS.md).

use megablocks_bench::{train_scaled, ScaledConfig, ScaledKind};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let hidden: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(96);
    let lr: f32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2e-3);
    let steps: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(500);
    let mut cfg = ScaledConfig::default_family();
    cfg.hidden = hidden;
    cfg.ffn_hidden = hidden * 2;
    cfg.lr_max = lr;
    cfg.steps = steps;
    for kind in [ScaledKind::Dense, ScaledKind::Dropless] {
        let r = train_scaled(&cfg, kind);
        println!(
            "hidden {hidden} lr {lr} steps {steps}: {:<22} val {:.4}",
            r.kind_label, r.final_val_loss
        );
    }
}

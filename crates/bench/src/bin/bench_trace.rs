//! Tracing-overhead microbenchmark: timeline recording on vs off.
//!
//! Runs the small dMoE forward+backward bench with the trace recorder's
//! *runtime* switch toggled (the compile-time feature stays on for both
//! sides, so both pay scalar-telemetry costs and the delta isolates the
//! per-event ring-buffer pushes). The acceptance budget is < 5%
//! overhead; the result is committed as `BENCH_trace.json` and the perf
//! gate re-validates it.
//!
//! ```text
//! cargo run --release -p megablocks-bench --bin bench_trace --features telemetry
//! ```

use std::time::Instant;

use megablocks_bench::exec_bench::BenchMeta;
use megablocks_core::{DroplessMoe, MoeConfig};
use megablocks_telemetry as telemetry;
use megablocks_tensor::init::{normal, seeded_rng};
use megablocks_tensor::Matrix;

fn p50(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// One timed pass: forward + backward over the small MoE layer.
fn measure(layer: &mut DroplessMoe, x: &Matrix, d_out: &Matrix, iters: usize) -> u128 {
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let out = layer.forward(x);
        let dx = layer.backward(&out.cache, d_out);
        samples.push(start.elapsed().as_nanos());
        assert!(dx.as_slice().iter().all(|v| v.is_finite()));
    }
    p50(&mut samples)
}

fn main() {
    if !telemetry::is_enabled() {
        eprintln!("bench_trace: build with --features telemetry to measure tracing overhead");
        std::process::exit(2);
    }
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_trace.json".to_string());

    // The "small MoE bench": 128 tokens, 8 experts, hidden 32, FFN 64.
    let cfg = MoeConfig::new(32, 64, 8).with_block_size(8);
    let mut rng = seeded_rng(17);
    let mut layer = DroplessMoe::new(cfg, &mut rng);
    let x = normal(128, 32, 1.0, &mut rng);
    let d_out = Matrix::from_fn(128, 32, |_, _| 0.01);

    let warmup = 20;
    let iters = 300;
    telemetry::trace_set_enabled(false);
    measure(&mut layer, &x, &d_out, warmup);
    let off_ns = measure(&mut layer, &x, &d_out, iters);

    telemetry::trace_set_enabled(true);
    telemetry::trace_reset();
    measure(&mut layer, &x, &d_out, warmup);
    let on_ns = measure(&mut layer, &x, &d_out, iters);
    let events = telemetry::trace_snapshot().events.len();
    telemetry::trace_set_enabled(false);

    let overhead_pct = (on_ns as f64 - off_ns as f64) / off_ns as f64 * 100.0;
    eprintln!(
        "trace off p50 {off_ns} ns   trace on p50 {on_ns} ns   overhead {overhead_pct:.2}% \
         ({events} events captured)"
    );
    let meta = BenchMeta::collect(megablocks_exec::parallelism());
    let doc = format!(
        "{{\n  \"bench\": \"trace_overhead\",\n  \
         \"meta\": {{\"threads\": {}, \"git_rev\": \"{}\", \"recorded_unix\": {}}},\n  \
         \"iters\": {iters},\n  \"trace_off_ns_p50\": {off_ns},\n  \
         \"trace_on_ns_p50\": {on_ns},\n  \"overhead_pct\": {overhead_pct:.4},\n  \
         \"events_captured\": {events}\n}}\n",
        meta.threads, meta.git_rev, meta.recorded_unix
    );
    std::fs::write(&out_path, &doc).expect("write BENCH_trace.json");
    print!("{doc}");
    eprintln!("bench_trace: wrote {out_path}");
    if overhead_pct >= 5.0 {
        eprintln!("bench_trace: overhead exceeds the 5% budget");
        std::process::exit(1);
    }
}

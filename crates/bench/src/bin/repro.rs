//! `repro` — regenerates every table and figure of the MegaBlocks paper.
//!
//! Usage: `repro <command> [--quick]`
//!
//! Commands:
//!   table1              Transformer configurations (weights, GFLOPs)
//!   table2              MoE configurations (weights, GFLOPs)
//!   table3              Max micro-batch sizes per framework (memory model)
//!   fig2                Loss vs capacity factor (scaled-down training)
//!   fig4                Matmul throughput vs tile shape (A100 model)
//!   fig7                End-to-end: dMoE vs Tutel vs Megatron-LM
//!   fig8                dMoE vs token-dropping MoEs at their best cf
//!   fig9                Block-sparse kernels vs cuBLAS batched (18 problems)
//!   ablation-launch     Hybrid blocked-CSR-COO vs dense-grid SDD (§5.1.3)
//!   ablation-transpose  Transpose indices vs explicit transpose (§5.1.4)
//!   all                 Everything above (quick mode for training figures)
//!
//! `--quick` shrinks the training runs for smoke-testing.

use megablocks_bench::{hours_at_loss, train_scaled, ScaledConfig, ScaledKind, Table};
use megablocks_gpusim::dense::gemm_throughput_tflops;
use megablocks_gpusim::memory::{
    max_micro_batch, moe_variant, paper_shape, training_memory, tutel_dynamic_expansion,
    MemoryPolicy, ModelShape,
};
use megablocks_gpusim::sparse::{
    moe_op_time, moe_op_time_with, relative_throughput, MoeOp, MoeProblem, SddLaunch,
};
use megablocks_gpusim::timeline::{
    end_to_end_hours, model_flops_utilization, tutel_dynamic_avg_expansion, ExecutionPolicy,
};
use megablocks_gpusim::{DeviceSpec, TileShape};
use megablocks_telemetry as telemetry;
use megablocks_transformer::{MoeSize, TransformerSize};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    // With the `telemetry` feature on, every sink flushes when this
    // guard drops — including during a panic unwind, so an aborted run
    // still leaves its metrics, timeline trace and health report on
    // disk. Plain `is_enabled()` checks inside the guard make this a
    // no-op otherwise.
    let _flush = telemetry::FlushOnDrop::new()
        .jsonl(format!("results/telemetry_{cmd}.jsonl"))
        .trace(format!("results/trace_{cmd}.json"))
        .with_summary(true);
    let _health = HealthExport(format!("results/health_{cmd}.json"));
    match cmd {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        "fig2" => fig2(quick),
        "fig4" => fig4(),
        "fig7" => fig7(quick),
        "fig8" => fig8(quick),
        "fig9" => fig9(),
        "ablation-launch" => ablation_launch(),
        "ablation-transpose" => ablation_transpose(),
        "ablation-blocksize" => ablation_blocksize(),
        "ablation-routing" => ablation_routing(quick),
        "all" => {
            table1();
            table2();
            table3();
            fig4();
            fig9();
            ablation_launch();
            ablation_transpose();
            ablation_blocksize();
            ablation_routing(quick);
            fig2(quick);
            fig7(quick);
            fig8(quick);
        }
        _ => {
            eprintln!(
                "usage: repro <table1|table2|table3|fig2|fig4|fig7|fig8|fig9|ablation-launch|ablation-transpose|ablation-blocksize|ablation-routing|all> [--quick]"
            );
            std::process::exit(2);
        }
    }
}

/// Writes `results/health_<cmd>.json` on drop (panic-safe, like
/// [`telemetry::FlushOnDrop`]); a no-op when telemetry is off or the
/// run recorded no MoE steps.
struct HealthExport(String);

impl Drop for HealthExport {
    fn drop(&mut self) {
        if let Err(e) = megablocks_core::health::export_health_json(&self.0) {
            eprintln!("telemetry: failed to write {}: {e}", self.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Tables 1 and 2: model configurations
// ---------------------------------------------------------------------------

fn table1() {
    let mut t = Table::new(
        "Table 1: Transformer model configurations",
        &[
            "Transformer",
            "hidden",
            "layers",
            "Weights (M)",
            "paper",
            "GFLOPs",
            "paper",
        ],
    );
    for size in TransformerSize::ALL {
        let cfg = size.config();
        t.row(vec![
            size.name().into(),
            cfg.hidden_size.to_string(),
            cfg.num_layers.to_string(),
            format!("{:.0}", cfg.param_count() as f64 / 1e6),
            size.paper_weights_m().to_string(),
            format!("{:.0}", cfg.flops_per_sequence() / 1e9),
            size.paper_gflops().to_string(),
        ]);
    }
    t.print();
}

fn table2() {
    let mut t = Table::new(
        "Table 2: MoE model configurations (64 experts, top-1)",
        &[
            "MoE",
            "experts",
            "top_k",
            "Weights (M)",
            "paper",
            "GFLOPs",
            "paper",
        ],
    );
    for size in MoeSize::ALL {
        let cfg = size.config_dropless();
        t.row(vec![
            size.name().into(),
            "64".into(),
            "1".into(),
            format!("{:.0}", cfg.param_count() as f64 / 1e6),
            size.paper_weights_m().to_string(),
            format!("{:.0}", cfg.flops_per_sequence() / 1e9),
            size.paper_gflops().to_string(),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------------
// Table 3: micro-batch sizes from the memory model
// ---------------------------------------------------------------------------

fn table3() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let mut t = Table::new(
        "Table 3: largest micro_batch_size fitting 80GB (memory model)",
        &[
            "Framework",
            "Model",
            "micro_batch",
            "paper",
            "mem @ mbs (GB)",
        ],
    );
    let dense = [
        ("XS", 64),
        ("Small", 32),
        ("Medium", 16),
        ("Large", 16),
        ("XL", 8),
    ];
    for (name, paper) in dense {
        let shape = paper_shape(name).unwrap();
        let got = max_micro_batch(&dev, &shape, MemoryPolicy::Dense, 8).unwrap();
        let mem = training_memory(&shape, MemoryPolicy::Dense, got, 8) / 1e9;
        t.row(vec![
            "Megatron-LM".into(),
            format!("Transformer-{name}"),
            got.to_string(),
            paper.to_string(),
            format!("{mem:.1}"),
        ]);
    }
    for (name, paper) in [("XS", 64), ("Small", 32), ("Medium", 8)] {
        let shape = moe_variant(paper_shape(name).unwrap());
        let got = max_micro_batch(&dev, &shape, MemoryPolicy::MegaBlocks, 8).unwrap();
        let mem = training_memory(&shape, MemoryPolicy::MegaBlocks, got, 8) / 1e9;
        t.row(vec![
            "MegaBlocks".into(),
            format!("dMoE-{name}"),
            got.to_string(),
            paper.to_string(),
            format!("{mem:.1}"),
        ]);
    }
    for (name, paper) in [("XS", 32), ("Small", 8), ("Medium", 1)] {
        let shape = moe_variant(paper_shape(name).unwrap());
        let policy = MemoryPolicy::Tutel {
            expansion: tutel_dynamic_expansion(name),
        };
        let got = max_micro_batch(&dev, &shape, policy, 8).unwrap();
        let mem = training_memory(&shape, policy, got, 8) / 1e9;
        t.row(vec![
            "Tutel".into(),
            format!("dMoE-{name}"),
            got.to_string(),
            paper.to_string(),
            format!("{mem:.1}"),
        ]);
    }
    t.print();
}

// ---------------------------------------------------------------------------
// Figure 4: tile-shape sweep
// ---------------------------------------------------------------------------

fn fig4() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let headers: Vec<String> = std::iter::once("size".to_string())
        .chain(TileShape::CUTLASS_SWEEP.iter().map(|t| t.to_string()))
        .chain(std::iter::once("winner".to_string()))
        .collect();
    let hrefs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 4: matmul TFLOP/s vs threadblock tile shape (A100 model)",
        &hrefs,
    );
    for size in [512usize, 1024, 2048, 4096, 8192, 16384] {
        let mut cells = vec![size.to_string()];
        let mut best = (String::new(), f64::MIN);
        for tile in TileShape::CUTLASS_SWEEP {
            let tf = gemm_throughput_tflops(&dev, tile, size, size, size);
            cells.push(format!("{tf:.0}"));
            if tf > best.1 {
                best = (tile.to_string(), tf);
            }
        }
        cells.push(best.0);
        t.row(cells);
    }
    t.print();
    println!("Paper: 128x128 tiles perform consistently on-par or better.\n");
}

// ---------------------------------------------------------------------------
// Figure 9: block-sparse kernels vs cuBLAS batched
// ---------------------------------------------------------------------------

/// The three Figure 9 model configurations at their Table 3 micro-batches.
fn fig9_problems() -> Vec<(&'static str, MoeProblem)> {
    // (name, micro_batch); hidden/ffn from Table 1 dims.
    let cases: [(&'static str, usize, usize, usize); 3] = [
        ("XS", 64, 512, 2048),
        ("Small", 32, 768, 3072),
        ("Medium", 8, 1024, 4096),
    ];
    cases
        .iter()
        .map(|&(name, mbs, hidden, ffn)| {
            (name, MoeProblem::uniform(64, mbs * 1024, hidden, ffn, 128))
        })
        .collect()
}

fn fig9() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let mut t = Table::new(
        "Figure 9: block-sparse throughput relative to cuBLAS batched (18 problems)",
        &["model", "op", "relative"],
    );
    let mut ratios = Vec::new();
    for (name, problem) in fig9_problems() {
        for op in MoeOp::ALL {
            let r = relative_throughput(&dev, &problem, op);
            ratios.push(r);
            t.row(vec![
                format!("MoE-{name}"),
                op.label().into(),
                format!("{:.1}%", 100.0 * r),
            ]);
        }
    }
    t.print();
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let var = ratios.iter().map(|r| (r - mean) * (r - mean)).sum::<f64>() / ratios.len() as f64;
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "Summary: mean {:.1}% (paper 98.6%), std {:.1}% (paper 4%), min {:.1}% (paper 91%), max {:.1}% (paper 104%)\n",
        100.0 * mean,
        100.0 * var.sqrt(),
        100.0 * min,
        100.0 * max
    );
}

// ---------------------------------------------------------------------------
// §5.1.3 / §5.1.4 ablations
// ---------------------------------------------------------------------------

fn ablation_launch() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let mut t = Table::new(
        "Ablation (5.1.3): SDD with hybrid blocked-CSR-COO vs dense-grid launch",
        &[
            "experts",
            "block sparsity",
            "hybrid (us)",
            "dense grid (us)",
            "overhead",
        ],
    );
    for experts in [4usize, 16, 64, 128] {
        let problem = MoeProblem::uniform(experts, 16384, 1024, 4096, 128);
        let sparsity = 1.0 - 1.0 / experts as f64;
        let hybrid = moe_op_time_with(&dev, &problem, MoeOp::Sdd, SddLaunch::HybridCoo, false);
        let dense = moe_op_time_with(&dev, &problem, MoeOp::Sdd, SddLaunch::DenseGrid, false);
        t.row(vec![
            experts.to_string(),
            format!("{:.1}%", 100.0 * sparsity),
            format!("{:.0}", hybrid * 1e6),
            format!("{:.0}", dense * 1e6),
            format!("{:.2}x", dense / hybrid),
        ]);
    }
    t.print();
    println!(
        "Paper: the cost of launching unused threadblocks is significant,\nparticularly for models with high expert counts.\n"
    );
}

fn ablation_transpose() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let mut t = Table::new(
        "Ablation (5.1.4): transpose indices vs explicit transposition",
        &[
            "model",
            "op",
            "indices (us)",
            "explicit (us)",
            "explicit cost",
        ],
    );
    for (name, problem) in fig9_problems() {
        for op in [MoeOp::DstD, MoeOp::DdtS] {
            let fast = moe_op_time(&dev, &problem, op);
            let slow = moe_op_time_with(&dev, &problem, op, SddLaunch::HybridCoo, true);
            t.row(vec![
                format!("MoE-{name}"),
                op.label().into(),
                format!("{:.0}", fast * 1e6),
                format!("{:.0}", slow * 1e6),
                format!("{:.2}x", slow / fast),
            ]);
        }
    }
    t.print();
}

fn ablation_routing(quick: bool) {
    // §7 of the paper: improved routing algorithms complement the
    // block-sparse computation. Train the same model with token-choice
    // (dMoE) and expert-choice routing on the same data.
    let cfg = scaled_cfg(quick, 64);
    println!(
        "Routing ablation (scaled): token-choice vs expert-choice, {} steps",
        cfg.steps
    );
    let mut t = Table::new(
        "Routing ablation: both routers ride the same block-sparse kernels",
        &["model", "val loss", "unrouted tokens %"],
    );
    for kind in [
        ScaledKind::Dropless,
        ScaledKind::ExpertChoice,
        ScaledKind::Dense,
    ] {
        let r = train_scaled(&cfg, kind);
        t.row(vec![
            r.kind_label.clone(),
            format!("{:.4}", r.final_val_loss),
            format!("{:.2}%", 100.0 * r.dropped_fraction),
        ]);
    }
    t.print();
}

fn ablation_blocksize() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let mut t = Table::new(
        "Ablation (5.1.2): sparsity block size vs dMoE FFN kernel time",
        &["block", "padding rows", "padding %", "layer time (us)"],
    );
    // An imbalanced 64-expert load summing to 32768 tokens (Zipf-ish).
    let loads: Vec<usize> = (0..64usize)
        .map(|e| {
            let w = 1.0 / (1.0 + e as f64 * 0.25);
            (w * 2200.0) as usize
        })
        .collect();
    let raw: usize = loads.iter().sum();
    for block in [32usize, 64, 128, 256] {
        let p = MoeProblem::from_loads(&loads, 1024, 2048, block);
        let padding = p.total_tokens() - raw;
        t.row(vec![
            format!("{block}x{block}"),
            padding.to_string(),
            format!("{:.1}%", 100.0 * padding as f64 / raw as f64),
            format!("{:.0}", p.layer_time(&dev) * 1e6),
        ]);
    }
    t.print();
    println!(
        "Small blocks minimize padding but run at lower per-tile efficiency;\n\
         128x128 balances the two (the paper's choice, §5.1.2).\n"
    );
}

// ---------------------------------------------------------------------------
// Figure 2: capacity-factor sweep (scaled training)
// ---------------------------------------------------------------------------

fn fig2(quick: bool) {
    let cfg = scaled_cfg(quick, 64);
    println!(
        "Figure 2 (scaled): {}-expert MoEs on the synthetic Pile, {} steps",
        cfg.num_experts, cfg.steps
    );
    let mut t = Table::new(
        "Figure 2: validation loss vs capacity factor",
        &["model", "val loss", "dropped %", "params"],
    );
    let kinds = [
        ScaledKind::Dense,
        ScaledKind::Dropping(1.0),
        ScaledKind::Dropping(1.5),
        ScaledKind::Dropping(2.0),
        ScaledKind::DynamicCapacity,
        ScaledKind::Dropless,
    ];
    for kind in kinds {
        let r = train_scaled(&cfg, kind);
        t.row(vec![
            r.kind_label.clone(),
            format!("{:.4}", r.final_val_loss),
            format!("{:.2}%", 100.0 * r.dropped_fraction),
            r.param_count.to_string(),
        ]);
    }
    t.print();
    println!(
        "Paper: loss decreases as capacity factor grows; the no-drop (max)\nconfiguration reaches the lowest loss.\n"
    );
}

// ---------------------------------------------------------------------------
// Figures 7 and 8: end-to-end training comparisons
// ---------------------------------------------------------------------------

/// Scaled stand-ins for the XS/Small/Medium families: quality comes from
/// these CPU runs; paper-scale timing comes from the A100 model.
fn scaled_cfg(quick: bool, hidden: usize) -> ScaledConfig {
    let mut cfg = ScaledConfig::default_family();
    cfg.hidden = hidden;
    cfg.ffn_hidden = hidden * 2;
    if quick {
        cfg.steps = 60;
    }
    cfg
}

struct E2eRow {
    family: &'static str,
    name: &'static str,
    mbs: usize,
    hours: f64,
    loss: f32,
}

fn paper_hours(shape: &ModelShape, policy: ExecutionPolicy, mbs: usize) -> f64 {
    let dev = DeviceSpec::a100_sxm4_80gb();
    end_to_end_hours(&dev, shape, policy, mbs, 10e9)
}

const E2E_SIZES: [(&str, usize); 3] = [("XS", 48), ("Small", 64), ("Medium", 96)];

fn fig7(quick: bool) {
    let dev = DeviceSpec::a100_sxm4_80gb();
    println!(
        "Figure 7 (hybrid): loss from scaled CPU training, time from the A100 model (10B tokens)"
    );

    // Scaled quality runs: one dense + one dropless per family size.
    let mut rows: Vec<E2eRow> = Vec::new();
    for (name, hidden) in E2E_SIZES {
        let cfg = scaled_cfg(quick, hidden);
        let dense = train_scaled(&cfg, ScaledKind::Dense);
        let dmoe = train_scaled(&cfg, ScaledKind::Dropless);
        let dshape = paper_shape(name).unwrap();
        let mshape = moe_variant(dshape.clone());
        let mbs_dense = max_micro_batch(&dev, &dshape, MemoryPolicy::Dense, 8).unwrap();
        let mbs_mega = max_micro_batch(&dev, &mshape, MemoryPolicy::MegaBlocks, 8).unwrap();
        let mbs_tutel = max_micro_batch(
            &dev,
            &mshape,
            MemoryPolicy::Tutel {
                expansion: tutel_dynamic_expansion(name),
            },
            8,
        )
        .unwrap();
        rows.push(E2eRow {
            family: "Megatron-LM",
            name,
            mbs: mbs_dense,
            hours: paper_hours(&dshape, ExecutionPolicy::DenseMegatron, mbs_dense),
            loss: dense.final_val_loss,
        });
        rows.push(E2eRow {
            family: "MegaBlocks dMoE",
            name,
            mbs: mbs_mega,
            hours: paper_hours(&mshape, ExecutionPolicy::MegaBlocks, mbs_mega),
            loss: dmoe.final_val_loss,
        });
        rows.push(E2eRow {
            family: "Tutel dMoE",
            name,
            mbs: mbs_tutel,
            hours: paper_hours(
                &mshape,
                ExecutionPolicy::Tutel {
                    expansion: tutel_dynamic_avg_expansion(name),
                },
                mbs_tutel,
            ),
            // Both dMoE formulations compute the same function: same loss.
            loss: dmoe.final_val_loss,
        });
    }

    let mut t = Table::new(
        "Figure 7: end-to-end training (10B tokens) — time model x scaled loss",
        &[
            "framework",
            "model",
            "micro_batch",
            "train (h)",
            "val loss (scaled)",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.family.into(),
            r.name.into(),
            r.mbs.to_string(),
            format!("{:.1}", r.hours),
            format!("{:.4}", r.loss),
        ]);
    }
    t.print();

    let mut s = Table::new(
        "Figure 7: MegaBlocks speedup over Tutel (paper: 1.38x / 2.0x / 4.35x)",
        &["model", "speedup"],
    );
    for (name, _) in E2E_SIZES {
        let mega = rows
            .iter()
            .find(|r| r.family == "MegaBlocks dMoE" && r.name == name)
            .unwrap();
        let tutel = rows
            .iter()
            .find(|r| r.family == "Tutel dMoE" && r.name == name)
            .unwrap();
        s.row(vec![
            format!("MoE-{name}"),
            format!("{:.2}x", tutel.hours / mega.hours),
        ]);
    }
    s.print();

    // Dense-vs-dMoE at equal loss: interpolate the dense (hours, loss)
    // frontier at each dMoE's loss.
    let dense_frontier: Vec<(f64, f32)> = rows
        .iter()
        .filter(|r| r.family == "Megatron-LM")
        .map(|r| (r.hours, r.loss))
        .collect();
    let mut s2 = Table::new(
        "Figure 7: dMoE speedup over dense at equal validation loss (paper: 1.8x - 2.4x)",
        &[
            "model",
            "dMoE loss",
            "dense-equivalent (h)",
            "dMoE (h)",
            "speedup",
        ],
    );
    for (name, _) in E2E_SIZES {
        let mega = rows
            .iter()
            .find(|r| r.family == "MegaBlocks dMoE" && r.name == name)
            .unwrap();
        match hours_at_loss(&dense_frontier, mega.loss) {
            Some(h_dense) => {
                s2.row(vec![
                    format!("dMoE-{name}"),
                    format!("{:.4}", mega.loss),
                    format!("{:.1}", h_dense),
                    format!("{:.1}", mega.hours),
                    format!("{:.2}x", h_dense / mega.hours),
                ]);
            }
            None => {
                s2.row(vec![
                    format!("dMoE-{name}"),
                    format!("{:.4}", mega.loss),
                    "beyond frontier".into(),
                    format!("{:.1}", mega.hours),
                    "n/a".into(),
                ]);
            }
        }
    }
    s2.print();

    let mut u = Table::new(
        "§6.1: Megatron sustained fraction of 2.5 PFLOP peak (paper: 21%-48%)",
        &["model", "MFU"],
    );
    for size in TransformerSize::ALL {
        let shape = paper_shape(size.name()).unwrap();
        let mbs = max_micro_batch(&dev, &shape, MemoryPolicy::Dense, 8).unwrap();
        let mfu = model_flops_utilization(
            &dev,
            &shape,
            ExecutionPolicy::DenseMegatron,
            mbs,
            size.config().flops_per_sequence(),
        );
        u.row(vec![
            format!("Transformer-{}", size.name()),
            format!("{:.0}%", 100.0 * mfu),
        ]);
    }
    u.print();
}

fn fig8(quick: bool) {
    let dev = DeviceSpec::a100_sxm4_80gb();
    println!("Figure 8 (hybrid): dMoE vs token-dropping MoEs at cf 1 / 1.5 / 2");
    let mut t = Table::new(
        "Figure 8: loss (scaled) and 10B-token time per configuration",
        &["model", "config", "val loss (scaled)", "train (h)"],
    );
    let mut speedups = Table::new(
        "Figure 8: dMoE speedup at equal loss vs best MoE (paper: 1.38x / 1.37x / 1.18x)",
        &["model", "speedup"],
    );
    for (name, hidden) in E2E_SIZES {
        let cfg = scaled_cfg(quick, hidden);
        let mshape = moe_variant(paper_shape(name).unwrap());
        let mbs = max_micro_batch(&dev, &mshape, MemoryPolicy::MegaBlocks, 8).unwrap();

        // Token-dropping MoEs can use the same micro-batch as the dMoE
        // (paper §6.2) — capacity memory at cf <= 2 fits.
        let mut frontier: Vec<(f64, f32)> = Vec::new();
        for cf in [1.0f32, 1.5, 2.0] {
            let r = train_scaled(&cfg, ScaledKind::Dropping(cf));
            let hours = paper_hours(
                &mshape,
                ExecutionPolicy::Tutel {
                    expansion: f64::from(cf),
                },
                mbs,
            );
            t.row(vec![
                format!("MoE-{name}"),
                format!("cf={cf}"),
                format!("{:.4}", r.final_val_loss),
                format!("{:.1}", hours),
            ]);
            frontier.push((hours, r.final_val_loss));
        }
        let dmoe = train_scaled(&cfg, ScaledKind::Dropless);
        let dmoe_hours = paper_hours(&mshape, ExecutionPolicy::MegaBlocks, mbs);
        t.row(vec![
            format!("MoE-{name}"),
            "dMoE (MegaBlocks)".into(),
            format!("{:.4}", dmoe.final_val_loss),
            format!("{:.1}", dmoe_hours),
        ]);
        let speedup = hours_at_loss(&frontier, dmoe.final_val_loss)
            .map(|h| format!("{:.2}x", h / dmoe_hours))
            .unwrap_or_else(|| "beyond frontier".into());
        speedups.row(vec![format!("MoE-{name}"), speedup]);
    }
    t.print();
    speedups.print();
}

//! Serving-engine benchmark: micro-batched vs sequential inference.
//!
//! Runs the same request stream closed-loop (one `infer` at a time, the
//! no-engine baseline) and open-loop through the deadline-aware
//! micro-batching engine — a burst plus a steady arrival-rate sweep —
//! then runs a flood drill past the admission queue's capacity with a
//! mixed deadline population. The measurement core lives in
//! `megablocks_bench::serve_bench`, shared with the `megablocks-bench
//! gate` regression check.
//!
//! ```text
//! cargo run --release -p megablocks-bench --bin bench_serve [--quick] [> BENCH_serve.json]
//! ```
//!
//! Emits one JSON document with per-scenario totals, the batch speedup
//! (sequential total over batched total), batched p50/p99 latency, the
//! flood drill's shed/expired/queue-depth counters, and a `meta`
//! provenance block (threads, git rev, recording time) the gate uses to
//! refuse apples-to-oranges comparisons.

use megablocks_bench::exec_bench::BenchMeta;
use megablocks_bench::serve_bench::{measure_serve, render_serve_json};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iter_scale = if quick { 0.2 } else { 1.0 };
    let (rows, flood) = measure_serve(iter_scale);
    let threads = rows.first().map_or(0, |m| m.threads);
    let meta = BenchMeta::collect(threads);
    print!("{}", render_serve_json(&meta, &rows, &flood));
}

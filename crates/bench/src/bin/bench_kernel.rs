//! Microkernel backend benchmark: tiled vs scalar on large products.
//!
//! Runs dense GEMM, SDD and DSD at compute-bound shapes under both
//! kernel backends and reports the tiled speedup (scalar p50 over tiled
//! p50). Because the backends are bit-identical by contract, the speedup
//! is pure implementation headroom — packing and cache blocking with no
//! accuracy trade. The measurement core lives in
//! `megablocks_bench::kernel_bench`, shared with the `megablocks-bench
//! gate` regression check.
//!
//! ```text
//! cargo run --release -p megablocks-bench --bin bench_kernel [> BENCH_kernel.json]
//! ```
//!
//! Emits one JSON document with per-scenario p50 latencies, the tiled
//! speedup, and a `meta` provenance block (threads, git rev, recording
//! time) the gate uses to refuse apples-to-oranges comparisons.

use megablocks_bench::exec_bench::BenchMeta;
use megablocks_bench::kernel_bench::{measure_kernels, render_kernel_json};

fn main() {
    let rows = measure_kernels(1.0);
    let threads = rows.first().map_or(0, |m| m.threads);
    let meta = BenchMeta::collect(threads);
    print!("{}", render_kernel_json(&meta, &rows));
}

//! Launch-overhead microbenchmark: persistent pool vs spawn-per-op.
//!
//! Measures the end-to-end latency of identical banded kernels executed
//! through [`megablocks_exec::LaunchPlan::launch`] (the pooled runtime)
//! and [`LaunchPlan::launch_spawn_per_op`] (the old scoped-thread
//! launcher, kept inside `crates/exec` as the ablation baseline). The
//! band bodies run the SDD inner loop over real MoE topologies, so the
//! small-topology scenarios are launch-overhead-bound — exactly where
//! spawn-per-op pays `threads` fresh OS thread spawns per kernel call.
//!
//! ```text
//! cargo run --release -p megablocks-bench --bin bench_exec [> BENCH_exec.json]
//! ```
//!
//! Emits one JSON document with per-scenario p50 latencies and the
//! pooled speedup.

use std::time::Instant;

use megablocks_exec::LaunchPlan;
use megablocks_sparse::{BlockSize, Topology};
use megablocks_tensor::Matrix;

/// One benchmark scenario: a dMoE first-layer SDD over an MoE topology.
struct Scenario {
    name: &'static str,
    /// Padded tokens per expert.
    tokens: Vec<usize>,
    ffn: usize,
    block_size: usize,
    hidden: usize,
    iters: usize,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "tiny_moe_sdd",
            tokens: vec![16, 8, 8, 16],
            ffn: 32,
            block_size: 8,
            hidden: 16,
            iters: 2000,
        },
        Scenario {
            name: "small_moe_sdd",
            tokens: vec![64, 32, 96, 64],
            ffn: 64,
            block_size: 16,
            hidden: 32,
            iters: 800,
        },
        Scenario {
            name: "large_moe_sdd",
            tokens: vec![512, 256, 768, 512],
            ffn: 256,
            block_size: 64,
            hidden: 128,
            iters: 40,
        },
    ]
}

/// Median of a sorted latency sample, in nanoseconds.
fn p50(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the scenario's SDD band body through `launch` or
/// `launch_spawn_per_op` and returns per-iteration latencies.
fn run(s: &Scenario, bands: usize, spawn_per_op: bool) -> Vec<u128> {
    let bs = BlockSize::new(s.block_size).expect("nonzero block size");
    let topo = Topology::for_moe(&s.tokens, s.ffn, bs).expect("block-aligned counts");
    let (rows, _) = topo.shape();
    let a = Matrix::from_fn(rows, s.hidden, |i, j| ((i * 31 + j * 7) as f32).sin());
    let b = Matrix::from_fn(s.hidden, topo.shape().1, |i, j| {
        ((i * 13 + j * 5) as f32).cos()
    });
    let bsz = s.block_size;
    let area = bsz * bsz;
    let nnz_blocks = topo.nnz_blocks();
    let mut out = vec![0.0f32; topo.nnz()];
    let blocks_per_band = nnz_blocks.div_ceil(bands);

    // The SDD inner loop, restated over the plan's (band, first-block)
    // coordinates — same traversal the production kernel performs.
    let body = |band: &mut [f32], first_block: usize| {
        for (off, block) in band.chunks_mut(area).enumerate() {
            let coord = topo.coord(first_block + off);
            let row0 = coord.row * bsz;
            let col0 = coord.col * bsz;
            for bi in 0..bsz {
                for bj in 0..bsz {
                    let mut acc = 0.0f32;
                    for k in 0..s.hidden {
                        acc += a[(row0 + bi, k)] * b[(k, col0 + bj)];
                    }
                    block[bi * bsz + bj] = acc;
                }
            }
        }
    };

    let mut samples = Vec::with_capacity(s.iters);
    for _ in 0..s.iters {
        let start = Instant::now();
        let plan = LaunchPlan::over_items("bench.sdd", &mut out, area, blocks_per_band, &body);
        if spawn_per_op {
            plan.launch_spawn_per_op();
        } else {
            plan.launch();
        }
        samples.push(start.elapsed().as_nanos());
    }
    assert!(out.iter().any(|&v| v != 0.0), "kernel produced no output");
    samples
}

fn main() {
    // Launch overhead only exists for multi-band plans: on boxes with
    // too few CPUs, pin a 4-way pool so both paths actually fan out
    // (spawn-per-op pays 3 OS thread spawns per launch, pooled pays a
    // queue push). An explicit MEGABLOCKS_THREADS still wins.
    let detected = std::thread::available_parallelism().map_or(1, |p| p.get());
    if std::env::var("MEGABLOCKS_THREADS").is_err() && detected < 4 {
        megablocks_exec::configure_threads(4);
    }
    let bands = megablocks_exec::parallelism();
    // Warm the pool so the first timed launch does not pay worker spawns.
    let mut warm = vec![0.0f32; 4096];
    LaunchPlan::over_items(
        "bench.warmup",
        &mut warm,
        1,
        4096 / bands.max(1),
        &|b: &mut [f32], _| b.fill(1.0),
    )
    .launch();

    let mut entries = Vec::new();
    for s in scenarios() {
        let mut pooled = run(&s, bands, false);
        let mut spawned = run(&s, bands, true);
        let (p, sp) = (p50(&mut pooled), p50(&mut spawned));
        let speedup = sp as f64 / p as f64;
        eprintln!(
            "{:<16} bands={bands} pooled p50 {:>10} ns   spawn-per-op p50 {:>10} ns   speedup {speedup:.2}x",
            s.name, p, sp
        );
        entries.push(format!(
            "    {{\"scenario\": \"{}\", \"bands\": {bands}, \"iters\": {}, \
             \"pooled_ns_p50\": {p}, \"spawn_per_op_ns_p50\": {sp}, \
             \"pooled_speedup\": {speedup:.4}}}",
            s.name, s.iters
        ));
    }
    println!(
        "{{\n  \"bench\": \"exec_launch_overhead\",\n  \"threads\": {bands},\n  \"results\": [\n{}\n  ]\n}}",
        entries.join(",\n")
    );
}

//! Launch-overhead microbenchmark: persistent pool vs spawn-per-op.
//!
//! Measures the end-to-end latency of identical banded kernels executed
//! through [`megablocks_exec::LaunchPlan::launch`] (the pooled runtime)
//! and `LaunchPlan::launch_spawn_per_op` (the old scoped-thread
//! launcher, kept inside `crates/exec` as the ablation baseline). The
//! band bodies run the SDD inner loop over real MoE topologies, so the
//! small-topology scenarios are launch-overhead-bound — exactly where
//! spawn-per-op pays `threads` fresh OS thread spawns per kernel call.
//! The measurement core lives in `megablocks_bench::exec_bench`, shared
//! with the `megablocks-bench gate` regression check.
//!
//! ```text
//! cargo run --release -p megablocks-bench --bin bench_exec [> BENCH_exec.json]
//! ```
//!
//! Emits one JSON document with per-scenario p50 latencies, the pooled
//! speedup, and a `meta` provenance block (threads, git rev, recording
//! time) the gate uses to refuse apples-to-oranges comparisons.

use megablocks_bench::exec_bench::{measure_all, render_bench_json, BenchMeta};

fn main() {
    let rows = measure_all(1.0);
    let threads = rows.first().map_or(0, |m| m.bands);
    let meta = BenchMeta::collect(threads);
    print!("{}", render_bench_json(&meta, &rows));
}

//! The serving-engine benchmark core, shared between the `bench_serve`
//! binary (which prints `BENCH_serve.json`) and the `megablocks-bench
//! gate` subcommand (which re-runs the same measurement and compares it
//! against the committed baseline).
//!
//! Two load shapes:
//!
//! * **Throughput scenarios** — the same request stream evaluated two
//!   ways: *closed-loop sequential* (one request at a time through
//!   [`DroplessMoe::infer`], the no-engine baseline) and *open-loop
//!   batched* (all requests submitted to a serve [`Engine`] at a fixed
//!   arrival gap — zero for a burst — and resolved through deadline-
//!   aware micro-batching). The figure of merit is the **batch
//!   speedup**: sequential total time over batched total time.
//!   Dimensionless, so comparable across machines, like the kernel
//!   benchmark's tiled speedup. Both paths compute bit-identical
//!   outputs, so the speedup is pure scheduling headroom: per-request
//!   routing, topology-build, launch and block-padding overhead
//!   amortized across a micro-batch.
//! * **A flood drill** — an open-loop burst far past the admission
//!   queue's capacity with a mixed deadline population. This one is not
//!   about speed: it proves the queue depth stays bounded at the cap,
//!   overload sheds (`Overloaded`) instead of queueing unboundedly, and
//!   already-dead requests are dropped before batch formation
//!   (`Expired`) rather than burned through the kernels.

use std::time::{Duration, Instant};

use megablocks_core::{DroplessMoe, MoeConfig};
use megablocks_serve::{Engine, ServeConfig, ServeError};
use megablocks_tensor::init::seeded_rng;
use megablocks_tensor::{init, Matrix};

use crate::exec_bench::{ensure_pool, p50, BenchMeta};

/// Hidden size of the benchmark layer.
const HIDDEN: usize = 64;
/// FFN width per expert.
const FFN: usize = 128;
/// Expert count.
const EXPERTS: usize = 4;
/// Sparse block size (each nonzero expert group pads to this).
const BLOCK: usize = 32;
/// Tokens per request — small on purpose: single-request inference pads
/// every touched expert group to a full block, which is exactly the
/// overhead micro-batching amortizes.
const TOKENS_PER_REQUEST: usize = 4;

/// One throughput scenario: a request stream at a fixed arrival gap.
pub struct ServeScenario {
    /// Stable scenario name (the gate joins baseline and fresh on it).
    pub name: &'static str,
    /// Requests in the stream at scale 1.0.
    pub requests: usize,
    /// Gap between consecutive submissions (zero = burst).
    pub arrival_gap: Duration,
    /// Engine micro-batch cap for this scenario.
    pub max_batch: usize,
    /// Engine batching wait.
    pub max_wait: Duration,
}

/// The fixed scenario set: a burst (pure batching headroom) and a
/// steady arrival stream (requests trickle in faster than sequential
/// service, so queues form and batching still wins).
pub fn serve_scenarios() -> Vec<ServeScenario> {
    vec![
        ServeScenario {
            name: "burst",
            requests: 96,
            arrival_gap: Duration::ZERO,
            max_batch: 8,
            max_wait: Duration::from_micros(500),
        },
        ServeScenario {
            name: "steady_50us",
            requests: 96,
            arrival_gap: Duration::from_micros(50),
            max_batch: 8,
            max_wait: Duration::from_micros(500),
        },
    ]
}

/// One throughput scenario's measured result.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMeasurement {
    /// Scenario name.
    pub scenario: String,
    /// Pool parallelism during the run.
    pub threads: usize,
    /// Requests actually served.
    pub requests: usize,
    /// Closed-loop sequential total (ns) for the whole stream.
    pub sequential_ns_total: u128,
    /// Batched (engine) total (ns) from first submit to last response.
    pub batched_ns_total: u128,
    /// Batched per-request end-to-end latency p50 (µs).
    pub batched_p50_us: u128,
    /// Batched per-request end-to-end latency p99 (µs).
    pub batched_p99_us: u128,
}

impl ServeMeasurement {
    /// Sequential total over batched total (>1 means batching wins).
    pub fn batch_speedup(&self) -> f64 {
        self.sequential_ns_total as f64 / self.batched_ns_total.max(1) as f64
    }
}

/// The flood drill's measured result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FloodMeasurement {
    /// Requests thrown at the engine.
    pub submitted: u64,
    /// Requests resolved with an output.
    pub served: u64,
    /// Requests shed at admission (`Overloaded`).
    pub shed: u64,
    /// Requests dropped for a passed deadline (pre-batch or
    /// post-compute).
    pub expired: u64,
    /// The admission-queue cap the drill ran with.
    pub queue_cap: u64,
    /// Largest queue depth the engine observed — bounded by the cap.
    pub max_queue_depth: u64,
}

impl FloodMeasurement {
    /// The invariants the drill must prove; `Err` lists the violations.
    pub fn validate(&self) -> Result<(), Vec<String>> {
        let mut violations = Vec::new();
        if self.max_queue_depth > self.queue_cap {
            violations.push(format!(
                "queue depth {} exceeded the cap {}",
                self.max_queue_depth, self.queue_cap
            ));
        }
        if self.shed == 0 {
            violations.push("flood never shed — admission queue is unbounded".to_string());
        }
        if self.expired == 0 {
            violations
                .push("no request expired pre-batch despite dead-on-arrival deadlines".to_string());
        }
        if self.served == 0 {
            violations.push("flood served nothing".to_string());
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations)
        }
    }
}

fn bench_layer() -> DroplessMoe {
    let cfg = MoeConfig::new(HIDDEN, FFN, EXPERTS).with_block_size(BLOCK);
    let mut rng = seeded_rng(42);
    DroplessMoe::new(cfg, &mut rng)
}

fn request_stream(n: usize) -> Vec<Matrix> {
    let mut rng = seeded_rng(7);
    (0..n)
        .map(|_| init::normal(TOKENS_PER_REQUEST, HIDDEN, 1.0, &mut rng))
        .collect()
}

/// Busy-waits out an arrival gap (sleep granularity on a loaded box is
/// far coarser than the 50µs gaps the sweep uses).
fn spin_gap(gap: Duration) {
    if gap.is_zero() {
        return;
    }
    let until = Instant::now() + gap;
    while Instant::now() < until {
        std::hint::spin_loop();
    }
}

/// The p99 of `samples` (sorted in place).
pub fn p99(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[(samples.len() * 99 / 100).min(samples.len() - 1)]
}

/// Runs one throughput scenario: sequential closed-loop first, then the
/// engine under the scenario's arrival pattern, on identical request
/// streams.
fn run_scenario(s: &ServeScenario, threads: usize, iter_scale: f64) -> ServeMeasurement {
    // Never below 32 requests: the figure of merit is amortization
    // across micro-batches, and a handful of requests under-batches so
    // badly the ratio stops being comparable to the full-scale baseline.
    let n = ((s.requests as f64 * iter_scale) as usize).max(32);
    let layer = bench_layer();
    let requests = request_stream(n);

    // Warm both paths (pool, workspace arenas) off the clock.
    layer.infer(&requests[0]).expect("warmup infer").recycle();

    let seq_start = Instant::now();
    for request in &requests {
        layer.infer(request).expect("sequential infer").recycle();
    }
    let sequential_ns_total = seq_start.elapsed().as_nanos();

    let engine = Engine::new(
        layer,
        ServeConfig::default()
            .with_max_batch(s.max_batch)
            .with_max_wait(s.max_wait)
            .with_queue_cap(n),
    );
    let batch_start = Instant::now();
    let handles: Vec<_> = requests
        .iter()
        .map(|request| {
            spin_gap(s.arrival_gap);
            engine
                .submit(request.clone(), None)
                .expect("cap covers the whole stream")
        })
        .collect();
    let mut latencies: Vec<u128> = handles
        .into_iter()
        .map(|h| {
            let response = h.wait().expect("batched request served");
            let us = response.latency.as_micros();
            response.output.recycle();
            us
        })
        .collect();
    let batched_ns_total = batch_start.elapsed().as_nanos();

    ServeMeasurement {
        scenario: s.name.to_string(),
        threads,
        requests: n,
        sequential_ns_total,
        batched_ns_total,
        batched_p50_us: p50(&mut latencies),
        batched_p99_us: p99(&mut latencies),
    }
}

/// Runs the flood drill: a burst of `12 x queue_cap` requests with a
/// mixed deadline population (a third dead on arrival or nearly so, the
/// rest unhurried) against a small admission queue.
pub fn run_flood(iter_scale: f64) -> FloodMeasurement {
    let queue_cap = 16usize;
    let n = ((192.0 * iter_scale) as usize).max(64);
    let engine = Engine::new(
        bench_layer(),
        ServeConfig::default()
            .with_max_batch(8)
            .with_max_wait(Duration::from_micros(200))
            .with_queue_cap(queue_cap),
    );
    let requests = request_stream(n);
    let mut handles = Vec::new();
    for (i, request) in requests.into_iter().enumerate() {
        // Deadline mix: a third effectively dead on arrival, a third
        // tight (may or may not ride a batch in time), a third open.
        let deadline = match i % 3 {
            0 => Some(megablocks_exec::Deadline::after(Duration::ZERO)),
            1 => Some(megablocks_exec::Deadline::after(Duration::from_micros(300))),
            _ => None,
        };
        match engine.submit(request, deadline) {
            Ok(handle) => handles.push(handle),
            Err(ServeError::Overloaded { .. }) | Err(ServeError::Expired) => {}
            Err(other) => panic!("unexpected flood error: {other}"),
        }
    }
    let mut served = 0u64;
    for handle in handles {
        match handle.wait() {
            Ok(response) => {
                response.output.recycle();
                served += 1;
            }
            Err(ServeError::Expired) => {}
            Err(other) => panic!("unexpected flood resolution: {other}"),
        }
    }
    let stats = engine.stats();
    FloodMeasurement {
        submitted: stats.submitted,
        served,
        shed: stats.shed,
        expired: stats.expired,
        queue_cap: queue_cap as u64,
        max_queue_depth: stats.max_queue_depth,
    }
}

/// Runs every throughput scenario plus the flood drill at `iter_scale`,
/// printing progress to stderr.
pub fn measure_serve(iter_scale: f64) -> (Vec<ServeMeasurement>, FloodMeasurement) {
    let threads = ensure_pool();
    let rows: Vec<ServeMeasurement> = serve_scenarios()
        .iter()
        .map(|s| {
            let m = run_scenario(s, threads, iter_scale);
            eprintln!(
                "{:<12} threads={threads} sequential {:>11} ns   batched {:>11} ns   \
                 speedup {:.2}x   p50 {} µs   p99 {} µs",
                m.scenario,
                m.sequential_ns_total,
                m.batched_ns_total,
                m.batch_speedup(),
                m.batched_p50_us,
                m.batched_p99_us
            );
            m
        })
        .collect();
    let flood = run_flood(iter_scale);
    eprintln!(
        "flood        submitted {} served {} shed {} expired {} depth {}/{}",
        flood.submitted,
        flood.served,
        flood.shed,
        flood.expired,
        flood.max_queue_depth,
        flood.queue_cap
    );
    (rows, flood)
}

/// Renders the `BENCH_serve.json` document: a `meta` provenance block,
/// one result object per throughput scenario, and the flood drill
/// (same layout family as the other `BENCH_*.json` files so the gate
/// shares its parsing helpers).
pub fn render_serve_json(
    meta: &BenchMeta,
    rows: &[ServeMeasurement],
    flood: &FloodMeasurement,
) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "    {{\"scenario\": \"{}\", \"threads\": {}, \"requests\": {}, \
                 \"sequential_ns_total\": {}, \"batched_ns_total\": {}, \
                 \"batched_p50_us\": {}, \"batched_p99_us\": {}, \
                 \"batch_speedup\": {:.4}}}",
                m.scenario,
                m.threads,
                m.requests,
                m.sequential_ns_total,
                m.batched_ns_total,
                m.batched_p50_us,
                m.batched_p99_us,
                m.batch_speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"serve_microbatching\",\n  \"threads\": {},\n  \
         \"meta\": {{\"threads\": {}, \"git_rev\": \"{}\", \"recorded_unix\": {}}},\n  \
         \"results\": [\n{}\n  ],\n  \
         \"flood\": {{\"submitted\": {}, \"served\": {}, \"shed\": {}, \"expired\": {}, \
         \"queue_cap\": {}, \"max_queue_depth\": {}}}\n}}\n",
        meta.threads,
        meta.threads,
        meta.git_rev,
        meta.recorded_unix,
        entries.join(",\n"),
        flood.submitted,
        flood.served,
        flood.shed,
        flood.expired,
        flood.queue_cap,
        flood.max_queue_depth
    )
}

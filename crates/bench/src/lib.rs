//! Shared infrastructure for the paper-reproduction harness.
//!
//! The `repro` binary (one subcommand per table/figure — see DESIGN.md's
//! per-experiment index) uses this crate to run *scaled-down* training
//! experiments on the synthetic Pile and to query the analytic A100 model
//! for paper-scale timing. Quality comparisons (Figures 2, 7, 8) train
//! real models on CPU at laptop scale; throughput/memory numbers (Figures
//! 4, 9, Tables 3) come from `megablocks-gpusim`.

pub mod exec_bench;
pub mod frontier;
pub mod gate;
pub mod kernel_bench;
pub mod report;
pub mod scaled;
pub mod serve_bench;

pub use frontier::hours_at_loss;
pub use report::Table;
pub use scaled::{train_scaled, ScaledConfig, ScaledKind, ScaledResult};

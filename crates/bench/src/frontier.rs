//! Loss-frontier interpolation for the equal-quality speedup comparisons
//! of Figures 7 and 8.
//!
//! The paper compares systems "for the same validation loss" by reading
//! the time a baseline family needs to reach a target loss off its
//! (time, loss) Pareto frontier. [`hours_at_loss`] linearly interpolates
//! within the frontier and extrapolates past its last segment (the paper
//! does the same when the dMoE's loss lies below every baseline point).

/// Hours needed on a `(hours, loss)` frontier to reach `target` loss.
///
/// Points may arrive unsorted. Returns `None` when the frontier has
/// fewer than two points or the extrapolation is degenerate
/// (non-decreasing loss or a non-finite/negative answer).
pub fn hours_at_loss(frontier: &[(f64, f32)], target: f32) -> Option<f64> {
    let mut pts: Vec<(f64, f32)> = frontier.to_vec();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    if pts.len() < 2 {
        return None;
    }
    for w in pts.windows(2) {
        let (h0, l0) = w[0];
        let (h1, l1) = w[1];
        if (l1 <= target && target <= l0) || (l0 <= target && target <= l1) {
            if (l1 - l0).abs() < f32::EPSILON {
                return Some(h0);
            }
            let f = (target - l0) / (l1 - l0);
            return Some(h0 + f64::from(f) * (h1 - h0));
        }
    }
    // Extrapolate from the last segment (target beyond every point).
    let (h0, l0) = pts[pts.len() - 2];
    let (h1, l1) = pts[pts.len() - 1];
    if (l1 - l0).abs() < 1e-9 {
        return None;
    }
    let f = (target - l0) / (l1 - l0);
    let h = h0 + f64::from(f) * (h1 - h0);
    (h.is_finite() && h > 0.0).then_some(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frontier() -> Vec<(f64, f32)> {
        // Hours grow, loss falls: a well-formed Pareto frontier.
        vec![(1.0, 5.0), (2.0, 4.0), (4.0, 3.5)]
    }

    #[test]
    fn interpolates_inside_segments() {
        assert_eq!(hours_at_loss(&frontier(), 4.5), Some(1.5));
        assert_eq!(hours_at_loss(&frontier(), 4.0), Some(2.0));
        let h = hours_at_loss(&frontier(), 3.75).unwrap();
        assert!((h - 3.0).abs() < 1e-9);
    }

    #[test]
    fn handles_unsorted_input() {
        let mut f = frontier();
        f.reverse();
        assert_eq!(hours_at_loss(&f, 4.5), Some(1.5));
    }

    #[test]
    fn extrapolates_past_the_best_point() {
        // Target 3.25 extends the last segment's slope (0.5 loss per 2h).
        let h = hours_at_loss(&frontier(), 3.25).unwrap();
        assert!((h - 5.0).abs() < 1e-6, "{h}");
    }

    #[test]
    fn degenerate_frontiers_return_none() {
        assert_eq!(hours_at_loss(&[], 1.0), None);
        assert_eq!(hours_at_loss(&[(1.0, 2.0)], 1.0), None);
        // Flat last segment cannot extrapolate.
        assert_eq!(hours_at_loss(&[(1.0, 2.0), (2.0, 2.0)], 1.0), None);
    }

    #[test]
    fn negative_extrapolation_is_rejected() {
        // A target far above the frontier would need negative hours.
        assert_eq!(hours_at_loss(&frontier(), 100.0), None);
    }
}

//! The microkernel backend benchmark core, shared between the
//! `bench_kernel` binary (which prints `BENCH_kernel.json`) and the
//! `megablocks-bench gate` subcommand (which re-runs the same measurement
//! and compares it against the committed baseline).
//!
//! Scenarios run the three product families every MoE layer is built from
//! — dense GEMM, SDD and DSD — at compute-bound sizes, once per kernel
//! backend ([`KernelBackend::Scalar`] vs [`KernelBackend::Tiled`]). The
//! figure of merit is the *tiled speedup* — scalar p50 over tiled p50 —
//! which is dimensionless and therefore comparable across machines of
//! similar shape, unlike raw nanoseconds. Because the backends are
//! bit-identical by contract, the speedup is pure implementation headroom:
//! packing and cache blocking, with no accuracy trade.

use std::time::Instant;

use megablocks_sparse::{ops, BlockSize, BlockSparseMatrix, Topology};
use megablocks_tensor::{configure_kernel_backend, matmul, KernelBackend, Matrix};

use crate::exec_bench::{ensure_pool, p50, BenchMeta};

/// Which product family a scenario exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelProduct {
    /// Dense `matmul` (the NN GEMM combo).
    Gemm,
    /// Sparse-output SDD over an MoE topology.
    Sdd,
    /// Dense-output DSD over an MoE topology.
    Dsd,
}

/// One benchmark scenario: a single product at a fixed shape.
pub struct KernelScenario {
    /// Stable scenario name (the gate joins baseline and fresh runs on it).
    pub name: &'static str,
    /// Product family under test.
    pub product: KernelProduct,
    /// Padded tokens per expert (sparse scenarios) — `m` comes from here.
    pub tokens: Vec<usize>,
    /// FFN width per expert (sparse) or output columns (gemm).
    pub ffn: usize,
    /// Sparse block size (ignored for gemm).
    pub block_size: usize,
    /// Reduction depth.
    pub hidden: usize,
    /// Timed iterations at scale 1.0.
    pub iters: usize,
}

/// The fixed scenario set. All three are compute-bound "large" shapes —
/// the acceptance floor (tiled >= 1.3x) is only meaningful where packing
/// cost is amortized; small shapes delegate to scalar anyway.
pub fn kernel_scenarios() -> Vec<KernelScenario> {
    vec![
        KernelScenario {
            name: "large_gemm",
            product: KernelProduct::Gemm,
            tokens: vec![],
            ffn: 512,
            block_size: 0,
            hidden: 384,
            iters: 30,
        },
        KernelScenario {
            name: "large_sdd",
            product: KernelProduct::Sdd,
            tokens: vec![512, 256, 768, 512],
            ffn: 256,
            block_size: 64,
            hidden: 256,
            iters: 20,
        },
        KernelScenario {
            name: "large_dsd",
            product: KernelProduct::Dsd,
            tokens: vec![512, 256, 768, 512],
            ffn: 256,
            block_size: 64,
            hidden: 256,
            iters: 20,
        },
    ]
}

/// Runs one scenario under the *currently selected* backend and returns
/// per-iteration latencies. `iter_scale` shrinks the iteration count for
/// smoke runs, but never below 7 — a p50 over fewer samples is too noisy
/// to compare against the committed baseline on a loaded CI box.
fn run_scenario(s: &KernelScenario, iter_scale: f64) -> Vec<u128> {
    let iters = ((s.iters as f64 * iter_scale) as usize).max(7);
    let mut samples = Vec::with_capacity(iters);
    match s.product {
        KernelProduct::Gemm => {
            let m = 1024;
            let a = Matrix::from_fn(m, s.hidden, |i, j| ((i * 31 + j * 7) as f32).sin());
            let b = Matrix::from_fn(s.hidden, s.ffn, |i, j| ((i * 13 + j * 5) as f32).cos());
            for _ in 0..iters {
                let start = Instant::now();
                let c = matmul(&a, &b);
                samples.push(start.elapsed().as_nanos());
                assert!(c.as_slice().iter().any(|&v| v != 0.0));
            }
        }
        KernelProduct::Sdd => {
            let topo = sparse_topology(s);
            let (rows, cols) = topo.shape();
            let a = Matrix::from_fn(rows, s.hidden, |i, j| ((i * 31 + j * 7) as f32).sin());
            let b = Matrix::from_fn(s.hidden, cols, |i, j| ((i * 13 + j * 5) as f32).cos());
            for _ in 0..iters {
                let start = Instant::now();
                let out = ops::sdd(&a, &b, &topo);
                samples.push(start.elapsed().as_nanos());
                assert!(out.as_slice().iter().any(|&v| v != 0.0));
            }
        }
        KernelProduct::Dsd => {
            let topo = sparse_topology(s);
            let (rows, cols) = topo.shape();
            let sp = BlockSparseMatrix::from_dense(
                &mask_to_topology(
                    &Matrix::from_fn(rows, cols, |i, j| ((i * 7 + j * 3) as f32).sin()),
                    &topo,
                ),
                &topo,
            )
            .expect("masked to topology");
            let d = Matrix::from_fn(cols, s.hidden, |i, j| ((i * 13 + j * 5) as f32).cos());
            for _ in 0..iters {
                let start = Instant::now();
                let out = ops::dsd(&sp, &d);
                samples.push(start.elapsed().as_nanos());
                assert!(out.as_slice().iter().any(|&v| v != 0.0));
            }
        }
    }
    samples
}

fn sparse_topology(s: &KernelScenario) -> Topology {
    let bs = BlockSize::new(s.block_size).expect("nonzero block size");
    Topology::for_moe(&s.tokens, s.ffn, bs).expect("block-aligned counts")
}

fn mask_to_topology(dense: &Matrix, topo: &Topology) -> Matrix {
    let b = topo.block_size().get();
    Matrix::from_fn(dense.rows(), dense.cols(), |i, j| {
        if topo.find(i / b, j / b).is_some() {
            dense[(i, j)]
        } else {
            0.0
        }
    })
}

/// One scenario's measured result.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMeasurement {
    /// Scenario name.
    pub scenario: String,
    /// Pool parallelism during the run.
    pub threads: usize,
    /// Timed iterations actually run (per backend).
    pub iters: usize,
    /// Scalar-backend p50 latency (ns).
    pub scalar_ns_p50: u128,
    /// Tiled-backend p50 latency (ns).
    pub tiled_ns_p50: u128,
}

impl KernelMeasurement {
    /// Scalar p50 over tiled p50 (>1 means the tiled backend wins).
    pub fn tiled_speedup(&self) -> f64 {
        self.scalar_ns_p50 as f64 / self.tiled_ns_p50.max(1) as f64
    }
}

/// Runs every scenario under both backends at `iter_scale`, printing
/// progress to stderr. The previously selected backend is restored.
pub fn measure_kernels(iter_scale: f64) -> Vec<KernelMeasurement> {
    let threads = ensure_pool();
    let previous = configure_kernel_backend(KernelBackend::Scalar);
    let rows = kernel_scenarios()
        .iter()
        .map(|s| {
            configure_kernel_backend(KernelBackend::Scalar);
            let mut scalar = run_scenario(s, iter_scale);
            configure_kernel_backend(KernelBackend::Tiled);
            let mut tiled = run_scenario(s, iter_scale);
            let m = KernelMeasurement {
                scenario: s.name.to_string(),
                threads,
                iters: scalar.len(),
                scalar_ns_p50: p50(&mut scalar),
                tiled_ns_p50: p50(&mut tiled),
            };
            eprintln!(
                "{:<12} threads={threads} scalar p50 {:>11} ns   tiled p50 {:>11} ns   speedup {:.2}x",
                m.scenario,
                m.scalar_ns_p50,
                m.tiled_ns_p50,
                m.tiled_speedup()
            );
            m
        })
        .collect();
    configure_kernel_backend(previous);
    rows
}

/// Renders the `BENCH_kernel.json` document: a `meta` provenance block
/// and one result object per scenario (same layout family as
/// `BENCH_exec.json` so the gate shares its parsing helpers).
pub fn render_kernel_json(meta: &BenchMeta, rows: &[KernelMeasurement]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "    {{\"scenario\": \"{}\", \"threads\": {}, \"iters\": {}, \
                 \"scalar_ns_p50\": {}, \"tiled_ns_p50\": {}, \
                 \"tiled_speedup\": {:.4}}}",
                m.scenario,
                m.threads,
                m.iters,
                m.scalar_ns_p50,
                m.tiled_ns_p50,
                m.tiled_speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"kernel_backends\",\n  \"threads\": {},\n  \
         \"meta\": {{\"threads\": {}, \"git_rev\": \"{}\", \"recorded_unix\": {}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        meta.threads,
        meta.threads,
        meta.git_rev,
        meta.recorded_unix,
        entries.join(",\n")
    )
}

//! Scaled-down training runs for the quality experiments (Figures 2, 7, 8).
//!
//! The paper trains 46M-13B parameter models on 10B tokens of The Pile on
//! 8 A100s; the CPU-scale equivalent here trains ~1M-parameter models on a
//! few hundred thousand synthetic tokens with the *same structure*: a
//! Transformer LM whose FFN layers are dense, dropless-MoE or
//! token-dropping-MoE, trained with Adam + clipping + warmup/decay at a
//! fixed global batch. Loss *differences between formulations* — the
//! quantity Figures 2, 7 and 8 plot — survive the scaling; absolute loss
//! values do not (documented in EXPERIMENTS.md).

use megablocks_core::{CapacityFactor, MoeConfig};
use megablocks_data::{PileConfig, SyntheticPile};
use megablocks_tensor::init::seeded_rng;
use megablocks_transformer::{FfnKind, Trainer, TrainerConfig, TransformerConfig, TransformerLm};

/// Which FFN formulation a scaled run trains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScaledKind {
    /// Dense FFN baseline (Megatron-LM).
    Dense,
    /// MegaBlocks dropless MoE.
    Dropless,
    /// Token-dropping MoE at a fixed capacity factor.
    Dropping(f32),
    /// Token-dropping MoE with Tutel's dynamic capacity factor (never
    /// drops; pads to the max load).
    DynamicCapacity,
    /// Block-sparse MoE with expert-choice routing (Zhou et al. 2022).
    ExpertChoice,
}

impl ScaledKind {
    /// Human-readable label for report rows.
    pub fn label(self) -> String {
        match self {
            ScaledKind::Dense => "Transformer (dense)".to_string(),
            ScaledKind::Dropless => "dMoE (MegaBlocks)".to_string(),
            ScaledKind::Dropping(cf) => format!("MoE cf={cf}"),
            ScaledKind::DynamicCapacity => "MoE cf=max (dynamic)".to_string(),
            ScaledKind::ExpertChoice => "MoE (expert choice)".to_string(),
        }
    }
}

/// Configuration of a scaled-down experiment family.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledConfig {
    /// Model hidden size.
    pub hidden: usize,
    /// Number of Transformer blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq_len: usize,
    /// Dense-equivalent FFN hidden size.
    pub ffn_hidden: usize,
    /// Experts per MoE layer.
    pub num_experts: usize,
    /// Sparsity block size for the dMoE (scaled down alongside the model;
    /// the paper-scale value is 128).
    pub block_size: usize,
    /// Optimizer steps to train.
    pub steps: usize,
    /// Trainer batch settings.
    pub batch_size: usize,
    /// Micro-batch for gradient accumulation.
    pub micro_batch_size: usize,
    /// Peak learning rate.
    pub lr_max: f32,
    /// Corpus settings.
    pub pile: PileConfig,
    /// Seed for data/model/trainer.
    pub seed: u64,
}

impl ScaledConfig {
    /// The default scaled family used by the figure reproductions:
    /// 2-layer, hidden-64 models with 8-expert MoEs on a 512-vocab
    /// synthetic Pile.
    pub fn default_family() -> Self {
        Self {
            hidden: 64,
            layers: 2,
            heads: 2,
            seq_len: 64,
            ffn_hidden: 128,
            num_experts: 8,
            block_size: 16,
            steps: 500,
            batch_size: 16,
            micro_batch_size: 8,
            lr_max: 3e-3,
            pile: PileConfig::repro(),
            seed: 17,
        }
    }

    /// A faster variant for smoke tests.
    pub fn smoke() -> Self {
        Self {
            steps: 25,
            pile: PileConfig::tiny(),
            ..Self::default_family()
        }
    }

    fn transformer_config(&self, kind: ScaledKind) -> TransformerConfig {
        let moe = || {
            MoeConfig::new(self.hidden, self.ffn_hidden, self.num_experts)
                .with_block_size(self.block_size)
        };
        let ffn = match kind {
            ScaledKind::Dense => FfnKind::Dense,
            ScaledKind::Dropless => FfnKind::Dropless(moe()),
            ScaledKind::Dropping(cf) => {
                FfnKind::Dropping(moe().with_capacity(CapacityFactor::Fixed(cf)))
            }
            ScaledKind::DynamicCapacity => {
                FfnKind::Dropping(moe().with_capacity(CapacityFactor::Dynamic))
            }
            ScaledKind::ExpertChoice => FfnKind::ExpertChoice(moe()),
        };
        TransformerConfig {
            vocab_size: self.pile.vocab_size,
            hidden_size: self.hidden,
            num_layers: self.layers,
            num_heads: self.heads,
            seq_len: self.seq_len,
            ffn_hidden_size: self.ffn_hidden,
            ffn,
        }
    }
}

/// Outcome of one scaled training run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledResult {
    /// The formulation trained.
    pub kind_label: String,
    /// Validation loss after training.
    pub final_val_loss: f32,
    /// Validation loss before training (sanity anchor; ~ln vocab).
    pub initial_val_loss: f32,
    /// Training cross-entropy at the last step.
    pub final_train_loss: f32,
    /// Total dropped token-assignments over the run.
    pub total_dropped: usize,
    /// Dropped fraction of all routed assignments.
    pub dropped_fraction: f64,
    /// Trainable parameters.
    pub param_count: usize,
}

/// Trains one scaled model and reports its quality.
///
/// Deterministic for a fixed config (data, init and batch order all
/// derive from `cfg.seed`).
pub fn train_scaled(cfg: &ScaledConfig, kind: ScaledKind) -> ScaledResult {
    let pile = SyntheticPile::generate(&cfg.pile, cfg.seed);
    let (train, valid) = pile.split(0.9);
    let mut rng = seeded_rng(cfg.seed + 1);
    let model = TransformerLm::new(cfg.transformer_config(kind), &mut rng);
    let tcfg = TrainerConfig {
        batch_size: cfg.batch_size,
        micro_batch_size: cfg.micro_batch_size,
        seq_len: cfg.seq_len,
        lr_max: cfg.lr_max,
        warmup_steps: cfg.steps / 10 + 1,
        total_steps: cfg.steps,
        clip: 1.0,
        seed: cfg.seed + 2,
    };
    let mut trainer = Trainer::new(model, tcfg);
    let initial = trainer.evaluate(&valid, 8).loss;
    let logs = trainer.train(&train, cfg.steps);
    let final_val = trainer.evaluate(&valid, 8).loss;
    let total_dropped: usize = logs.iter().map(|l| l.dropped_tokens).sum();
    let routed = cfg.steps * cfg.batch_size * cfg.seq_len * cfg.layers;
    let param_count = trainer.model_mut().param_count();
    ScaledResult {
        kind_label: kind.label(),
        final_val_loss: final_val,
        initial_val_loss: initial,
        final_train_loss: logs.last().map_or(f32::NAN, |l| l.ce_loss),
        total_dropped,
        dropped_fraction: total_dropped as f64 / routed as f64,
        param_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_runs_all_kinds() {
        let cfg = ScaledConfig::smoke();
        for kind in [
            ScaledKind::Dense,
            ScaledKind::Dropless,
            ScaledKind::Dropping(1.0),
            ScaledKind::DynamicCapacity,
        ] {
            let r = train_scaled(&cfg, kind);
            assert!(r.final_val_loss.is_finite(), "{}", r.kind_label);
            assert!(
                r.final_val_loss < r.initial_val_loss,
                "{} did not learn: {} -> {}",
                r.kind_label,
                r.initial_val_loss,
                r.final_val_loss
            );
            if matches!(kind, ScaledKind::Dropless | ScaledKind::DynamicCapacity) {
                assert_eq!(r.total_dropped, 0, "{} dropped tokens", r.kind_label);
            }
        }
    }
}

//! The exec launch-overhead benchmark core, shared between the
//! `bench_exec` binary (which prints `BENCH_exec.json`) and the
//! `megablocks-bench gate` subcommand (which re-runs the same
//! measurement and compares it against the committed baseline).
//!
//! Scenarios run the SDD inner loop over real MoE topologies through
//! [`LaunchPlan::launch`] (pooled) and
//! [`LaunchPlan::launch_spawn_per_op`] (the scoped-thread ablation
//! baseline); the reported figure of merit is the *pooled speedup* —
//! spawn-per-op p50 over pooled p50 — which is dimensionless and
//! therefore comparable across machines of similar shape, unlike raw
//! nanoseconds.

use std::time::{Instant, SystemTime, UNIX_EPOCH};

use megablocks_exec::LaunchPlan;
use megablocks_sparse::{BlockSize, Topology};
use megablocks_tensor::Matrix;

/// One benchmark scenario: a dMoE first-layer SDD over an MoE topology.
pub struct Scenario {
    /// Stable scenario name (the gate joins baseline and fresh runs on it).
    pub name: &'static str,
    /// Padded tokens per expert.
    pub tokens: Vec<usize>,
    /// FFN width.
    pub ffn: usize,
    /// Sparse block size.
    pub block_size: usize,
    /// Hidden width (the GEMM reduction depth).
    pub hidden: usize,
    /// Timed iterations at scale 1.0.
    pub iters: usize,
}

/// The fixed scenario set (`tiny`/`small` are launch-overhead-bound,
/// `large` is compute-bound).
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "tiny_moe_sdd",
            tokens: vec![16, 8, 8, 16],
            ffn: 32,
            block_size: 8,
            hidden: 16,
            iters: 2000,
        },
        Scenario {
            name: "small_moe_sdd",
            tokens: vec![64, 32, 96, 64],
            ffn: 64,
            block_size: 16,
            hidden: 32,
            iters: 800,
        },
        Scenario {
            name: "large_moe_sdd",
            tokens: vec![512, 256, 768, 512],
            ffn: 256,
            block_size: 64,
            hidden: 128,
            iters: 40,
        },
    ]
}

/// Median of a latency sample, in nanoseconds.
pub fn p50(samples: &mut [u128]) -> u128 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Runs the scenario's SDD band body through `launch` or
/// `launch_spawn_per_op` and returns per-iteration latencies.
/// `iter_scale` shrinks the iteration count for smoke runs (at least 5
/// iterations always run).
pub fn run_scenario(s: &Scenario, bands: usize, spawn_per_op: bool, iter_scale: f64) -> Vec<u128> {
    let bs = BlockSize::new(s.block_size).expect("nonzero block size");
    let topo = Topology::for_moe(&s.tokens, s.ffn, bs).expect("block-aligned counts");
    let (rows, _) = topo.shape();
    let a = Matrix::from_fn(rows, s.hidden, |i, j| ((i * 31 + j * 7) as f32).sin());
    let b = Matrix::from_fn(s.hidden, topo.shape().1, |i, j| {
        ((i * 13 + j * 5) as f32).cos()
    });
    let bsz = s.block_size;
    let area = bsz * bsz;
    let nnz_blocks = topo.nnz_blocks();
    let mut out = vec![0.0f32; topo.nnz()];
    let blocks_per_band = nnz_blocks.div_ceil(bands);

    // The SDD inner loop, restated over the plan's (band, first-block)
    // coordinates — same traversal the production kernel performs.
    let body = |band: &mut [f32], first_block: usize| {
        for (off, block) in band.chunks_mut(area).enumerate() {
            let coord = topo.coord(first_block + off);
            let row0 = coord.row * bsz;
            let col0 = coord.col * bsz;
            for bi in 0..bsz {
                for bj in 0..bsz {
                    let mut acc = 0.0f32;
                    for k in 0..s.hidden {
                        acc += a[(row0 + bi, k)] * b[(k, col0 + bj)];
                    }
                    block[bi * bsz + bj] = acc;
                }
            }
        }
    };

    let iters = ((s.iters as f64 * iter_scale) as usize).max(5);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let start = Instant::now();
        let plan = LaunchPlan::over_items("bench.sdd", &mut out, area, blocks_per_band, &body);
        if spawn_per_op {
            plan.launch_spawn_per_op();
        } else {
            plan.launch();
        }
        samples.push(start.elapsed().as_nanos());
    }
    assert!(out.iter().any(|&v| v != 0.0), "kernel produced no output");
    samples
}

/// Pins a 4-way pool when the box has fewer CPUs (launch overhead only
/// exists for multi-band plans; an explicit `MEGABLOCKS_THREADS` still
/// wins), warms the pool, and returns the band count.
pub fn ensure_pool() -> usize {
    let detected = std::thread::available_parallelism().map_or(1, |p| p.get());
    if std::env::var("MEGABLOCKS_THREADS").is_err() && detected < 4 {
        megablocks_exec::configure_threads(4);
    }
    let bands = megablocks_exec::parallelism();
    // Warm the pool so the first timed launch does not pay worker spawns.
    let mut warm = vec![0.0f32; 4096];
    LaunchPlan::over_items(
        "bench.warmup",
        &mut warm,
        1,
        4096 / bands.max(1),
        &|b: &mut [f32], _| b.fill(1.0),
    )
    .launch();
    bands
}

/// One scenario's measured result.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecMeasurement {
    /// Scenario name.
    pub scenario: String,
    /// Bands per launch (the pool's parallelism target).
    pub bands: usize,
    /// Timed iterations actually run.
    pub iters: usize,
    /// Pooled-launch p50 latency (ns).
    pub pooled_ns_p50: u128,
    /// Spawn-per-op p50 latency (ns).
    pub spawn_per_op_ns_p50: u128,
}

impl ExecMeasurement {
    /// Spawn-per-op p50 over pooled p50 (>1 means the pool wins).
    pub fn pooled_speedup(&self) -> f64 {
        self.spawn_per_op_ns_p50 as f64 / self.pooled_ns_p50.max(1) as f64
    }
}

/// Runs every scenario at `iter_scale`, printing progress to stderr.
pub fn measure_all(iter_scale: f64) -> Vec<ExecMeasurement> {
    let bands = ensure_pool();
    scenarios()
        .iter()
        .map(|s| {
            let mut pooled = run_scenario(s, bands, false, iter_scale);
            let mut spawned = run_scenario(s, bands, true, iter_scale);
            let m = ExecMeasurement {
                scenario: s.name.to_string(),
                bands,
                iters: pooled.len(),
                pooled_ns_p50: p50(&mut pooled),
                spawn_per_op_ns_p50: p50(&mut spawned),
            };
            eprintln!(
                "{:<16} bands={bands} pooled p50 {:>10} ns   spawn-per-op p50 {:>10} ns   speedup {:.2}x",
                m.scenario,
                m.pooled_ns_p50,
                m.spawn_per_op_ns_p50,
                m.pooled_speedup()
            );
            m
        })
        .collect()
}

/// Provenance stamped into `BENCH_exec.json` so the regression gate can
/// refuse apples-to-oranges comparisons (different thread counts) and
/// stale baselines can be traced to a commit.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchMeta {
    /// Pool parallelism the numbers were recorded with.
    pub threads: usize,
    /// `git rev-parse --short HEAD` at recording time (`unknown` when
    /// not in a git checkout).
    pub git_rev: String,
    /// Wall-clock recording time (seconds since the Unix epoch).
    pub recorded_unix: u64,
}

impl BenchMeta {
    /// Collects provenance for a run at `threads` parallelism.
    pub fn collect(threads: usize) -> Self {
        let git_rev = std::process::Command::new("git")
            .args(["rev-parse", "--short", "HEAD"])
            .output()
            .ok()
            .filter(|o| o.status.success())
            .and_then(|o| String::from_utf8(o.stdout).ok())
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| "unknown".to_string());
        let recorded_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map_or(0, |d| d.as_secs());
        BenchMeta {
            threads,
            git_rev,
            recorded_unix,
        }
    }
}

/// Renders the `BENCH_exec.json` document: top-level `threads` (kept
/// from the original format), a `meta` provenance block, and one result
/// object per scenario.
pub fn render_bench_json(meta: &BenchMeta, rows: &[ExecMeasurement]) -> String {
    let entries: Vec<String> = rows
        .iter()
        .map(|m| {
            format!(
                "    {{\"scenario\": \"{}\", \"bands\": {}, \"iters\": {}, \
                 \"pooled_ns_p50\": {}, \"spawn_per_op_ns_p50\": {}, \
                 \"pooled_speedup\": {:.4}}}",
                m.scenario,
                m.bands,
                m.iters,
                m.pooled_ns_p50,
                m.spawn_per_op_ns_p50,
                m.pooled_speedup()
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"exec_launch_overhead\",\n  \"threads\": {},\n  \
         \"meta\": {{\"threads\": {}, \"git_rev\": \"{}\", \"recorded_unix\": {}}},\n  \
         \"results\": [\n{}\n  ]\n}}\n",
        meta.threads,
        meta.threads,
        meta.git_rev,
        meta.recorded_unix,
        entries.join(",\n")
    )
}

//! Minimal aligned-table printer for harness output.

/// A simple text table with a title, column headers and string cells,
/// printed with aligned columns — the harness's output format for every
/// regenerated table and figure.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are stringified by the caller).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["model", "value"]);
        t.row(vec!["XS".into(), "1".into()]);
        t.row(vec!["Medium".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("Medium"));
        // Both data lines end aligned on the value column.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }
}

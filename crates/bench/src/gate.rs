//! The perf-regression gate: `cargo run -p megablocks-bench -- gate`.
//!
//! Re-runs the exec launch-overhead benchmark and compares it against
//! the committed `BENCH_exec.json` baseline. The comparison is on the
//! *pooled speedup* ratio (dimensionless — robust to the absolute speed
//! of the machine) with a configurable relative tolerance; a fresh
//! speedup falling below `baseline * (1 - tolerance)` is a regression
//! and the gate exits nonzero, so CI fails before a slow launch path
//! lands. Runs recorded at a different pool parallelism are *refused*
//! (distinct exit code) rather than compared — thread count changes the
//! quantity being measured, not just its noise.
//!
//! When a committed `BENCH_trace.json` exists, the gate also checks the
//! recorded tracing-on overhead stays under its budget. When a committed
//! `BENCH_kernel.json` exists, the gate re-runs the microkernel backend
//! benchmark and enforces the tiled speedup: each scenario must clear
//! both `baseline * (1 - tolerance)` and the absolute acceptance floor
//! (`--min-kernel-speedup`, default 1.3x) — a tiled backend that no
//! longer beats scalar by the contracted margin is a regression even if
//! the committed baseline was already slow.
//!
//! When a committed `BENCH_serve.json` exists, the gate also re-runs
//! the serving-engine benchmark and enforces the batch speedup: each
//! throughput scenario must clear both `baseline * (1 - tolerance)` and
//! the absolute acceptance floor (`--min-serve-speedup`, default 1.1x —
//! an engine that no longer beats sequential single-request inference
//! has lost its reason to exist), and the flood drill must show a
//! bounded queue depth with nonzero shed and pre-batch expiry counts.
//!
//! Exit codes: 0 pass · 1 regression · 2 usage/configuration error ·
//! 3 metadata mismatch (comparison refused).

use std::path::{Path, PathBuf};

use megablocks_telemetry::json::Json;

use crate::exec_bench::{measure_all, ExecMeasurement};
use crate::kernel_bench::{measure_kernels, KernelMeasurement};
use crate::serve_bench::{measure_serve, ServeMeasurement};

/// Gate configuration (CLI flags of the `gate` subcommand).
#[derive(Debug, Clone)]
pub struct GateConfig {
    /// Committed baseline to compare against.
    pub baseline: PathBuf,
    /// Committed trace-overhead benchmark to validate (skipped when the
    /// file does not exist).
    pub trace_baseline: PathBuf,
    /// Relative speedup tolerance: fresh speedup must be at least
    /// `baseline * (1 - tolerance)`.
    pub tolerance: f64,
    /// Iteration scale for the fresh run (1.0 = full, CI uses less).
    pub iter_scale: f64,
    /// Synthetic slowdown factor applied to fresh pooled latencies
    /// (testing hook: `--inflate 2` must make the gate fail).
    pub inflate: f64,
    /// Maximum tracing-on overhead (percent) accepted from
    /// `BENCH_trace.json`.
    pub max_trace_overhead_pct: f64,
    /// Committed microkernel benchmark to re-run and validate (skipped
    /// when the file does not exist).
    pub kernel_baseline: PathBuf,
    /// Absolute acceptance floor for the tiled backend's speedup over
    /// scalar on the kernel benchmark's compute-bound scenarios.
    pub min_kernel_speedup: f64,
    /// Relative tolerance for the kernel speedups — wider than
    /// [`GateConfig::tolerance`] because tiled-vs-scalar ratios run
    /// 5-12x and swing far more with machine load than the ~1x exec
    /// ratios; the `min_kernel_speedup` floor backstops the contract.
    pub kernel_tolerance: f64,
    /// Committed serving benchmark to re-run and validate (skipped when
    /// the file does not exist).
    pub serve_baseline: PathBuf,
    /// Absolute acceptance floor for the engine's batch speedup over
    /// closed-loop sequential inference on each throughput scenario.
    pub min_serve_speedup: f64,
    /// Relative tolerance for the serve speedups — wider even than
    /// [`GateConfig::kernel_tolerance`]: end-to-end scheduling ratios
    /// swing with machine load, and `--quick` runs systematically
    /// under-batch (fewer requests amortize less overhead); the
    /// `min_serve_speedup` floor backstops the contract.
    pub serve_tolerance: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            baseline: PathBuf::from("BENCH_exec.json"),
            trace_baseline: PathBuf::from("BENCH_trace.json"),
            tolerance: 0.25,
            iter_scale: 1.0,
            inflate: 1.0,
            max_trace_overhead_pct: 5.0,
            kernel_baseline: PathBuf::from("BENCH_kernel.json"),
            min_kernel_speedup: 1.3,
            kernel_tolerance: 0.5,
            serve_baseline: PathBuf::from("BENCH_serve.json"),
            min_serve_speedup: 1.1,
            serve_tolerance: 0.6,
        }
    }
}

/// One scenario row parsed from a committed baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRow {
    /// Scenario name.
    pub scenario: String,
    /// Recorded pooled speedup.
    pub pooled_speedup: f64,
}

/// A parsed `BENCH_exec.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Pool parallelism the baseline was recorded with.
    pub threads: usize,
    /// Recording commit (`unknown` for pre-provenance baselines).
    pub git_rev: String,
    /// Per-scenario rows.
    pub rows: Vec<BaselineRow>,
}

/// Parses a `BENCH_exec.json` document (with or without the `meta`
/// provenance block — older baselines only carry top-level `threads`).
pub fn parse_baseline(src: &str) -> Result<Baseline, String> {
    let doc = Json::parse(src)?;
    let threads = doc
        .get("meta")
        .and_then(|m| m.get("threads"))
        .or_else(|| doc.get("threads"))
        .and_then(Json::as_u64)
        .ok_or("baseline missing threads")? as usize;
    let git_rev = doc
        .get("meta")
        .and_then(|m| m.get("git_rev"))
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("baseline missing results array")?;
    let mut rows = Vec::with_capacity(results.len());
    for (i, row) in results.iter().enumerate() {
        rows.push(BaselineRow {
            scenario: row
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("result {i}: missing scenario"))?
                .to_string(),
            pooled_speedup: row
                .get("pooled_speedup")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result {i}: missing pooled_speedup"))?,
        });
    }
    if rows.is_empty() {
        return Err("baseline has no results".to_string());
    }
    Ok(Baseline {
        threads,
        git_rev,
        rows,
    })
}

/// Outcome of comparing a fresh run against a baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateOutcome {
    /// Human-readable pass notes, one per checked scenario.
    pub passes: Vec<String>,
    /// Regressions found (empty means the gate passes).
    pub failures: Vec<String>,
}

/// Compares fresh measurements against the baseline rows. Pure logic,
/// separated from I/O so tests can drive it with synthetic numbers.
pub fn compare(baseline: &Baseline, fresh: &[ExecMeasurement], tolerance: f64) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for base in &baseline.rows {
        let Some(m) = fresh.iter().find(|m| m.scenario == base.scenario) else {
            outcome
                .failures
                .push(format!("{}: missing from fresh run", base.scenario));
            continue;
        };
        let floor = base.pooled_speedup * (1.0 - tolerance);
        let speedup = m.pooled_speedup();
        if speedup < floor {
            outcome.failures.push(format!(
                "{}: pooled speedup {speedup:.3}x below floor {floor:.3}x \
                 (baseline {:.3}x, tolerance {:.0}%)",
                base.scenario,
                base.pooled_speedup,
                tolerance * 100.0
            ));
        } else {
            outcome.passes.push(format!(
                "{}: pooled speedup {speedup:.3}x >= floor {floor:.3}x (baseline {:.3}x)",
                base.scenario, base.pooled_speedup
            ));
        }
    }
    outcome
}

/// One scenario row parsed from a committed `BENCH_kernel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBaselineRow {
    /// Scenario name.
    pub scenario: String,
    /// Recorded tiled speedup (scalar p50 over tiled p50).
    pub tiled_speedup: f64,
}

/// A parsed `BENCH_kernel.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBaseline {
    /// Pool parallelism the baseline was recorded with.
    pub threads: usize,
    /// Recording commit.
    pub git_rev: String,
    /// Per-scenario rows.
    pub rows: Vec<KernelBaselineRow>,
}

/// Parses a `BENCH_kernel.json` document.
pub fn parse_kernel_baseline(src: &str) -> Result<KernelBaseline, String> {
    let doc = Json::parse(src)?;
    let threads = doc
        .get("meta")
        .and_then(|m| m.get("threads"))
        .or_else(|| doc.get("threads"))
        .and_then(Json::as_u64)
        .ok_or("kernel baseline missing threads")? as usize;
    let git_rev = doc
        .get("meta")
        .and_then(|m| m.get("git_rev"))
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("kernel baseline missing results array")?;
    let mut rows = Vec::with_capacity(results.len());
    for (i, row) in results.iter().enumerate() {
        rows.push(KernelBaselineRow {
            scenario: row
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("result {i}: missing scenario"))?
                .to_string(),
            tiled_speedup: row
                .get("tiled_speedup")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result {i}: missing tiled_speedup"))?,
        });
    }
    if rows.is_empty() {
        return Err("kernel baseline has no results".to_string());
    }
    Ok(KernelBaseline {
        threads,
        git_rev,
        rows,
    })
}

/// Compares fresh kernel measurements against the baseline rows: each
/// scenario's tiled speedup must clear both the baseline within
/// `tolerance` *and* the absolute `floor` — the acceptance contract, not
/// just drift from whatever was last committed. Pure logic, separated
/// from I/O so tests can drive it with synthetic numbers.
pub fn compare_kernel(
    baseline: &KernelBaseline,
    fresh: &[KernelMeasurement],
    tolerance: f64,
    floor: f64,
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for base in &baseline.rows {
        let Some(m) = fresh.iter().find(|m| m.scenario == base.scenario) else {
            outcome
                .failures
                .push(format!("{}: missing from fresh kernel run", base.scenario));
            continue;
        };
        let required = (base.tiled_speedup * (1.0 - tolerance)).max(floor);
        let speedup = m.tiled_speedup();
        if speedup < required {
            outcome.failures.push(format!(
                "{}: tiled speedup {speedup:.3}x below required {required:.3}x \
                 (baseline {:.3}x, tolerance {:.0}%, floor {floor:.2}x)",
                base.scenario,
                base.tiled_speedup,
                tolerance * 100.0
            ));
        } else {
            outcome.passes.push(format!(
                "{}: tiled speedup {speedup:.3}x >= required {required:.3}x (baseline {:.3}x)",
                base.scenario, base.tiled_speedup
            ));
        }
    }
    outcome
}

/// One scenario row parsed from a committed `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBaselineRow {
    /// Scenario name.
    pub scenario: String,
    /// Recorded batch speedup (sequential total over batched total).
    pub batch_speedup: f64,
}

/// A parsed `BENCH_serve.json` baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeBaseline {
    /// Pool parallelism the baseline was recorded with.
    pub threads: usize,
    /// Recording commit.
    pub git_rev: String,
    /// Per-scenario rows.
    pub rows: Vec<ServeBaselineRow>,
}

/// Parses a `BENCH_serve.json` document.
pub fn parse_serve_baseline(src: &str) -> Result<ServeBaseline, String> {
    let doc = Json::parse(src)?;
    let threads = doc
        .get("meta")
        .and_then(|m| m.get("threads"))
        .or_else(|| doc.get("threads"))
        .and_then(Json::as_u64)
        .ok_or("serve baseline missing threads")? as usize;
    let git_rev = doc
        .get("meta")
        .and_then(|m| m.get("git_rev"))
        .and_then(Json::as_str)
        .unwrap_or("unknown")
        .to_string();
    let results = doc
        .get("results")
        .and_then(Json::as_arr)
        .ok_or("serve baseline missing results array")?;
    let mut rows = Vec::with_capacity(results.len());
    for (i, row) in results.iter().enumerate() {
        rows.push(ServeBaselineRow {
            scenario: row
                .get("scenario")
                .and_then(Json::as_str)
                .ok_or_else(|| format!("result {i}: missing scenario"))?
                .to_string(),
            batch_speedup: row
                .get("batch_speedup")
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("result {i}: missing batch_speedup"))?,
        });
    }
    if rows.is_empty() {
        return Err("serve baseline has no results".to_string());
    }
    Ok(ServeBaseline {
        threads,
        git_rev,
        rows,
    })
}

/// Compares fresh serving measurements against the baseline rows: each
/// scenario's batch speedup must clear both the baseline within
/// `tolerance` *and* the absolute `floor` — a serving engine that no
/// longer beats sequential single-request inference has lost its reason
/// to exist, regardless of what was last committed. Pure logic,
/// separated from I/O so tests can drive it with synthetic numbers.
pub fn compare_serve(
    baseline: &ServeBaseline,
    fresh: &[ServeMeasurement],
    tolerance: f64,
    floor: f64,
) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    for base in &baseline.rows {
        let Some(m) = fresh.iter().find(|m| m.scenario == base.scenario) else {
            outcome
                .failures
                .push(format!("{}: missing from fresh serve run", base.scenario));
            continue;
        };
        let required = (base.batch_speedup * (1.0 - tolerance)).max(floor);
        let speedup = m.batch_speedup();
        if speedup < required {
            outcome.failures.push(format!(
                "serve {}: batch speedup {speedup:.3}x below required {required:.3}x \
                 (baseline {:.3}x, tolerance {:.0}%, floor {floor:.2}x)",
                base.scenario,
                base.batch_speedup,
                tolerance * 100.0
            ));
        } else {
            outcome.passes.push(format!(
                "serve {}: batch speedup {speedup:.3}x >= required {required:.3}x (baseline {:.3}x)",
                base.scenario, base.batch_speedup
            ));
        }
    }
    outcome
}

/// Validates the committed `BENCH_trace.json` overhead figure, if the
/// file exists. `Ok(None)` when absent.
pub fn check_trace_overhead(path: &Path, max_pct: f64) -> Result<Option<String>, String> {
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(_) => return Ok(None),
    };
    let doc = Json::parse(&src).map_err(|e| format!("{}: {e}", path.display()))?;
    let pct = doc
        .get("overhead_pct")
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("{}: missing overhead_pct", path.display()))?;
    if pct > max_pct {
        Err(format!(
            "{}: tracing overhead {pct:.2}% exceeds the {max_pct:.1}% budget",
            path.display()
        ))
    } else {
        Ok(Some(format!(
            "trace overhead {pct:.2}% within the {max_pct:.1}% budget"
        )))
    }
}

/// Runs the gate end to end: parse baseline, fresh measurement,
/// comparison, trace-overhead check. Returns the process exit code.
pub fn run_gate(cfg: &GateConfig) -> i32 {
    let src = match std::fs::read_to_string(&cfg.baseline) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gate: cannot read {}: {e}", cfg.baseline.display());
            return 2;
        }
    };
    let baseline = match parse_baseline(&src) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("gate: cannot parse {}: {e}", cfg.baseline.display());
            return 2;
        }
    };
    println!(
        "gate: baseline {} (threads {}, rev {})",
        cfg.baseline.display(),
        baseline.threads,
        baseline.git_rev
    );

    let mut fresh = measure_all(cfg.iter_scale);
    let threads = fresh.first().map_or(0, |m| m.bands);
    if threads != baseline.threads {
        eprintln!(
            "gate: REFUSED — baseline recorded at {} threads, this run uses {threads}; \
             re-record the baseline or set MEGABLOCKS_THREADS={}",
            baseline.threads, baseline.threads
        );
        return 3;
    }
    if cfg.inflate > 1.0 {
        println!(
            "gate: applying synthetic x{:.2} slowdown to pooled latencies",
            cfg.inflate
        );
        for m in &mut fresh {
            m.pooled_ns_p50 = (m.pooled_ns_p50 as f64 * cfg.inflate) as u128;
        }
    }

    let mut outcome = compare(&baseline, &fresh, cfg.tolerance);

    // Microkernel backend check, when a baseline is committed.
    match std::fs::read_to_string(&cfg.kernel_baseline) {
        Err(_) => {}
        Ok(src) => {
            let kernel_baseline = match parse_kernel_baseline(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("gate: cannot parse {}: {e}", cfg.kernel_baseline.display());
                    return 2;
                }
            };
            println!(
                "gate: kernel baseline {} (threads {}, rev {})",
                cfg.kernel_baseline.display(),
                kernel_baseline.threads,
                kernel_baseline.git_rev
            );
            let kernel_fresh = measure_kernels(cfg.iter_scale);
            let kernel_threads = kernel_fresh.first().map_or(0, |m| m.threads);
            if kernel_threads != kernel_baseline.threads {
                eprintln!(
                    "gate: REFUSED — kernel baseline recorded at {} threads, this run uses \
                     {kernel_threads}; re-record the baseline or set MEGABLOCKS_THREADS={}",
                    kernel_baseline.threads, kernel_baseline.threads
                );
                return 3;
            }
            let kernel_outcome = compare_kernel(
                &kernel_baseline,
                &kernel_fresh,
                cfg.kernel_tolerance,
                cfg.min_kernel_speedup,
            );
            outcome.passes.extend(kernel_outcome.passes);
            outcome.failures.extend(kernel_outcome.failures);
        }
    }

    // Serving-engine check, when a baseline is committed.
    match std::fs::read_to_string(&cfg.serve_baseline) {
        Err(_) => {}
        Ok(src) => {
            let serve_baseline = match parse_serve_baseline(&src) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("gate: cannot parse {}: {e}", cfg.serve_baseline.display());
                    return 2;
                }
            };
            println!(
                "gate: serve baseline {} (threads {}, rev {})",
                cfg.serve_baseline.display(),
                serve_baseline.threads,
                serve_baseline.git_rev
            );
            let (serve_fresh, flood) = measure_serve(cfg.iter_scale);
            let serve_threads = serve_fresh.first().map_or(0, |m| m.threads);
            if serve_threads != serve_baseline.threads {
                eprintln!(
                    "gate: REFUSED — serve baseline recorded at {} threads, this run uses \
                     {serve_threads}; re-record the baseline or set MEGABLOCKS_THREADS={}",
                    serve_baseline.threads, serve_baseline.threads
                );
                return 3;
            }
            let serve_outcome = compare_serve(
                &serve_baseline,
                &serve_fresh,
                cfg.serve_tolerance,
                cfg.min_serve_speedup,
            );
            outcome.passes.extend(serve_outcome.passes);
            outcome.failures.extend(serve_outcome.failures);
            match flood.validate() {
                Ok(()) => outcome.passes.push(format!(
                    "serve flood: depth {}/{} bounded, {} shed, {} expired pre-batch, {} served",
                    flood.max_queue_depth, flood.queue_cap, flood.shed, flood.expired, flood.served
                )),
                Err(violations) => outcome
                    .failures
                    .extend(violations.into_iter().map(|v| format!("serve flood: {v}"))),
            }
        }
    }

    for line in &outcome.passes {
        println!("gate: PASS {line}");
    }
    for line in &outcome.failures {
        println!("gate: FAIL {line}");
    }
    match check_trace_overhead(&cfg.trace_baseline, cfg.max_trace_overhead_pct) {
        Ok(Some(note)) => println!("gate: PASS {note}"),
        Ok(None) => {}
        Err(e) => {
            println!("gate: FAIL {e}");
            return 1;
        }
    }
    if outcome.failures.is_empty() {
        println!(
            "gate: OK ({} scenarios within tolerance)",
            outcome.passes.len()
        );
        0
    } else {
        println!("gate: {} regression(s) found", outcome.failures.len());
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meas(name: &str, pooled: u128, spawned: u128) -> ExecMeasurement {
        ExecMeasurement {
            scenario: name.to_string(),
            bands: 4,
            iters: 100,
            pooled_ns_p50: pooled,
            spawn_per_op_ns_p50: spawned,
        }
    }

    fn baseline() -> Baseline {
        Baseline {
            threads: 4,
            git_rev: "abc1234".to_string(),
            rows: vec![
                BaselineRow {
                    scenario: "tiny_moe_sdd".to_string(),
                    pooled_speedup: 1.5,
                },
                BaselineRow {
                    scenario: "large_moe_sdd".to_string(),
                    pooled_speedup: 1.0,
                },
            ],
        }
    }

    #[test]
    fn matching_run_passes() {
        let fresh = vec![
            meas("tiny_moe_sdd", 100, 150),
            meas("large_moe_sdd", 100, 101),
        ];
        let out = compare(&baseline(), &fresh, 0.25);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.passes.len(), 2);
    }

    #[test]
    fn slowed_run_regresses() {
        // tiny collapses to 1.0x against a 1.5x baseline: below the
        // 25%-tolerance floor of 1.125x.
        let fresh = vec![
            meas("tiny_moe_sdd", 150, 150),
            meas("large_moe_sdd", 100, 101),
        ];
        let out = compare(&baseline(), &fresh, 0.25);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("tiny_moe_sdd"));
    }

    #[test]
    fn missing_scenario_regresses() {
        let fresh = vec![meas("tiny_moe_sdd", 100, 150)];
        let out = compare(&baseline(), &fresh, 0.25);
        assert!(out.failures.iter().any(|f| f.contains("large_moe_sdd")));
    }

    #[test]
    fn baseline_round_trips_through_render() {
        use crate::exec_bench::{render_bench_json, BenchMeta};
        let meta = BenchMeta {
            threads: 4,
            git_rev: "deadbee".to_string(),
            recorded_unix: 1_754_000_000,
        };
        let rows = vec![meas("tiny_moe_sdd", 100, 157)];
        let parsed = parse_baseline(&render_bench_json(&meta, &rows)).unwrap();
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.git_rev, "deadbee");
        assert_eq!(parsed.rows.len(), 1);
        assert!((parsed.rows[0].pooled_speedup - 1.57).abs() < 1e-9);
    }

    fn kernel_meas(name: &str, scalar: u128, tiled: u128) -> KernelMeasurement {
        KernelMeasurement {
            scenario: name.to_string(),
            threads: 4,
            iters: 20,
            scalar_ns_p50: scalar,
            tiled_ns_p50: tiled,
        }
    }

    fn kernel_baseline() -> KernelBaseline {
        KernelBaseline {
            threads: 4,
            git_rev: "abc1234".to_string(),
            rows: vec![
                KernelBaselineRow {
                    scenario: "large_gemm".to_string(),
                    tiled_speedup: 2.0,
                },
                KernelBaselineRow {
                    scenario: "large_sdd".to_string(),
                    tiled_speedup: 1.6,
                },
            ],
        }
    }

    #[test]
    fn kernel_matching_run_passes() {
        let fresh = vec![
            kernel_meas("large_gemm", 200, 100),
            kernel_meas("large_sdd", 160, 100),
        ];
        let out = compare_kernel(&kernel_baseline(), &fresh, 0.25, 1.3);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.passes.len(), 2);
    }

    #[test]
    fn kernel_floor_binds_even_when_baseline_is_slow() {
        // A 1.35x baseline with 25% tolerance allows 1.0125x — but the
        // absolute 1.3x floor still rejects a 1.1x fresh run.
        let baseline = KernelBaseline {
            threads: 4,
            git_rev: "abc1234".to_string(),
            rows: vec![KernelBaselineRow {
                scenario: "large_gemm".to_string(),
                tiled_speedup: 1.35,
            }],
        };
        let fresh = vec![kernel_meas("large_gemm", 110, 100)];
        let out = compare_kernel(&baseline, &fresh, 0.25, 1.3);
        assert_eq!(out.failures.len(), 1);
        assert!(
            out.failures[0].contains("floor 1.30x"),
            "{}",
            out.failures[0]
        );
    }

    #[test]
    fn kernel_regression_against_baseline_fails() {
        // 2.0x baseline, 25% tolerance => 1.5x required; 1.4x fails even
        // though it clears the absolute floor.
        let fresh = vec![
            kernel_meas("large_gemm", 140, 100),
            kernel_meas("large_sdd", 160, 100),
        ];
        let out = compare_kernel(&kernel_baseline(), &fresh, 0.25, 1.3);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("large_gemm"));
    }

    #[test]
    fn kernel_missing_scenario_fails() {
        let fresh = vec![kernel_meas("large_gemm", 200, 100)];
        let out = compare_kernel(&kernel_baseline(), &fresh, 0.25, 1.3);
        assert!(out.failures.iter().any(|f| f.contains("large_sdd")));
    }

    #[test]
    fn kernel_baseline_round_trips_through_render() {
        use crate::exec_bench::BenchMeta;
        use crate::kernel_bench::render_kernel_json;
        let meta = BenchMeta {
            threads: 4,
            git_rev: "deadbee".to_string(),
            recorded_unix: 1_754_000_000,
        };
        let rows = vec![kernel_meas("large_gemm", 200, 100)];
        let parsed = parse_kernel_baseline(&render_kernel_json(&meta, &rows)).unwrap();
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.git_rev, "deadbee");
        assert_eq!(parsed.rows.len(), 1);
        assert!((parsed.rows[0].tiled_speedup - 2.0).abs() < 1e-9);
    }

    fn serve_meas(name: &str, sequential: u128, batched: u128) -> ServeMeasurement {
        ServeMeasurement {
            scenario: name.to_string(),
            threads: 4,
            requests: 96,
            sequential_ns_total: sequential,
            batched_ns_total: batched,
            batched_p50_us: 500,
            batched_p99_us: 2000,
        }
    }

    fn serve_baseline() -> ServeBaseline {
        ServeBaseline {
            threads: 4,
            git_rev: "abc1234".to_string(),
            rows: vec![
                ServeBaselineRow {
                    scenario: "burst".to_string(),
                    batch_speedup: 3.0,
                },
                ServeBaselineRow {
                    scenario: "steady_50us".to_string(),
                    batch_speedup: 2.0,
                },
            ],
        }
    }

    #[test]
    fn serve_matching_run_passes() {
        let fresh = vec![
            serve_meas("burst", 300, 100),
            serve_meas("steady_50us", 200, 100),
        ];
        let out = compare_serve(&serve_baseline(), &fresh, 0.5, 1.1);
        assert!(out.failures.is_empty(), "{:?}", out.failures);
        assert_eq!(out.passes.len(), 2);
    }

    #[test]
    fn serve_floor_binds_even_when_baseline_is_slow() {
        // A 1.2x baseline with 50% tolerance allows 0.6x — but batched
        // inference falling behind sequential must still fail.
        let baseline = ServeBaseline {
            threads: 4,
            git_rev: "abc1234".to_string(),
            rows: vec![ServeBaselineRow {
                scenario: "burst".to_string(),
                batch_speedup: 1.2,
            }],
        };
        let fresh = vec![serve_meas("burst", 100, 105)];
        let out = compare_serve(&baseline, &fresh, 0.5, 1.1);
        assert_eq!(out.failures.len(), 1);
        assert!(
            out.failures[0].contains("floor 1.10x"),
            "{}",
            out.failures[0]
        );
    }

    #[test]
    fn serve_regression_against_baseline_fails() {
        // 3.0x baseline, 50% tolerance => 1.5x required; 1.2x fails
        // even though it clears the absolute floor.
        let fresh = vec![
            serve_meas("burst", 120, 100),
            serve_meas("steady_50us", 200, 100),
        ];
        let out = compare_serve(&serve_baseline(), &fresh, 0.5, 1.1);
        assert_eq!(out.failures.len(), 1);
        assert!(out.failures[0].contains("burst"));
    }

    #[test]
    fn serve_missing_scenario_fails() {
        let fresh = vec![serve_meas("burst", 300, 100)];
        let out = compare_serve(&serve_baseline(), &fresh, 0.5, 1.1);
        assert!(out.failures.iter().any(|f| f.contains("steady_50us")));
    }

    #[test]
    fn serve_baseline_round_trips_through_render() {
        use crate::exec_bench::BenchMeta;
        use crate::serve_bench::{render_serve_json, FloodMeasurement};
        let meta = BenchMeta {
            threads: 4,
            git_rev: "deadbee".to_string(),
            recorded_unix: 1_754_000_000,
        };
        let rows = vec![serve_meas("burst", 300, 100)];
        let flood = FloodMeasurement {
            submitted: 120,
            served: 100,
            shed: 40,
            expired: 64,
            queue_cap: 16,
            max_queue_depth: 16,
        };
        let parsed = parse_serve_baseline(&render_serve_json(&meta, &rows, &flood)).unwrap();
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.git_rev, "deadbee");
        assert_eq!(parsed.rows.len(), 1);
        assert!((parsed.rows[0].batch_speedup - 3.0).abs() < 1e-9);
    }

    #[test]
    fn flood_validation_catches_unbounded_queues() {
        use crate::serve_bench::FloodMeasurement;
        let healthy = FloodMeasurement {
            submitted: 120,
            served: 100,
            shed: 40,
            expired: 64,
            queue_cap: 16,
            max_queue_depth: 16,
        };
        assert!(healthy.validate().is_ok());
        let unbounded = FloodMeasurement {
            max_queue_depth: 17,
            ..healthy.clone()
        };
        let violations = unbounded.validate().unwrap_err();
        assert!(violations.iter().any(|v| v.contains("exceeded the cap")));
        let never_sheds = FloodMeasurement {
            shed: 0,
            ..healthy.clone()
        };
        assert!(never_sheds
            .validate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("never shed")));
        let never_expires = FloodMeasurement {
            expired: 0,
            ..healthy
        };
        assert!(never_expires
            .validate()
            .unwrap_err()
            .iter()
            .any(|v| v.contains("expired")));
    }

    #[test]
    fn legacy_baseline_without_meta_parses() {
        let legacy = r#"{
  "bench": "exec_launch_overhead",
  "threads": 4,
  "results": [
    {"scenario": "tiny_moe_sdd", "bands": 4, "iters": 2000,
     "pooled_ns_p50": 100, "spawn_per_op_ns_p50": 157, "pooled_speedup": 1.5694}
  ]
}"#;
        let parsed = parse_baseline(legacy).unwrap();
        assert_eq!(parsed.threads, 4);
        assert_eq!(parsed.git_rev, "unknown");
    }
}

//! Sanity properties of the analytic A100 model: monotonicity, scaling
//! behaviour, and conservation relations that any defensible performance
//! model must satisfy.

use megablocks_gpusim::dense::{best_gemm_time, cublas_batched_time, gemm_time};
use megablocks_gpusim::memory::{
    activation_memory, max_micro_batch, moe_variant, paper_shape, training_memory, weight_memory,
    MemoryPolicy,
};
use megablocks_gpusim::sparse::{moe_op_time, MoeOp, MoeProblem};
use megablocks_gpusim::timeline::{micro_step_time, train_step_time, ExecutionPolicy};
use megablocks_gpusim::{DeviceSpec, TileShape};
use proptest::prelude::*;

fn dev() -> DeviceSpec {
    DeviceSpec::a100_sxm4_80gb()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_time_is_monotone_in_each_dimension(
        m in 1usize..4096, n in 1usize..4096, k in 1usize..4096,
    ) {
        let d = dev();
        let t = gemm_time(&d, TileShape::PAPER, m, n, k);
        prop_assert!(t > 0.0 && t.is_finite());
        prop_assert!(gemm_time(&d, TileShape::PAPER, m * 2, n, k) >= t);
        prop_assert!(gemm_time(&d, TileShape::PAPER, m, n * 2, k) >= t);
        prop_assert!(gemm_time(&d, TileShape::PAPER, m, n, k * 2) >= t * 0.999);
    }

    #[test]
    fn gemm_time_never_beats_physics(m in 64usize..4096, n in 64usize..4096, k in 64usize..4096) {
        // Modeled time can never go below the pure-compute bound at peak.
        let d = dev();
        let t = gemm_time(&d, TileShape::PAPER, m, n, k);
        let flops = 2.0 * m as f64 * n as f64 * k as f64;
        prop_assert!(t >= flops / d.peak_flops, "time {t} beats peak-rate bound");
    }

    #[test]
    fn best_tile_is_no_worse_than_any_tile(size in 64usize..4096) {
        let d = dev();
        let best = best_gemm_time(&d, size, size, size);
        for tile in TileShape::CUTLASS_SWEEP {
            prop_assert!(best <= gemm_time(&d, tile, size, size, size) + 1e-12);
        }
    }

    #[test]
    fn batched_time_grows_with_batch(batch in 1usize..64) {
        let d = dev();
        let t1 = cublas_batched_time(&d, 256, 1024, 512, batch);
        let t2 = cublas_batched_time(&d, 256, 1024, 512, batch * 2);
        prop_assert!(t2 >= t1);
    }

    #[test]
    fn sparse_op_time_scales_with_load(per_expert_blocks in 1usize..12) {
        let d = dev();
        let mk = |blocks: usize| MoeProblem {
            tokens_per_expert: vec![blocks * 128; 16],
            hidden: 512,
            ffn: 2048,
            block: 128,
        };
        for op in MoeOp::ALL {
            let t1 = moe_op_time(&d, &mk(per_expert_blocks), op);
            let t2 = moe_op_time(&d, &mk(per_expert_blocks * 2), op);
            prop_assert!(t2 > t1 * 1.2, "{}: {t1} -> {t2}", op.label());
        }
    }

    #[test]
    fn activation_memory_is_monotone_in_expansion(e1 in 1.0f64..10.0, delta in 0.1f64..5.0) {
        let shape = moe_variant(paper_shape("Small").unwrap());
        let lo = activation_memory(&shape, MemoryPolicy::Tutel { expansion: e1 }, 4);
        let hi = activation_memory(&shape, MemoryPolicy::Tutel { expansion: e1 + delta }, 4);
        prop_assert!(hi > lo);
    }

    #[test]
    fn max_micro_batch_shrinks_with_expansion(e in 1.0f64..30.0) {
        let d = dev();
        let shape = moe_variant(paper_shape("Small").unwrap());
        let base = max_micro_batch(&d, &shape, MemoryPolicy::Tutel { expansion: 1.0 }, 8);
        let worse = max_micro_batch(&d, &shape, MemoryPolicy::Tutel { expansion: e }, 8);
        match (base, worse) {
            (Some(b), Some(w)) => prop_assert!(w <= b),
            (Some(_), None) => {}
            other => prop_assert!(false, "unexpected {other:?}"),
        }
    }

    #[test]
    fn train_step_time_decomposes_over_accumulation(mbs in prop::sample::select(vec![1usize, 2, 4, 8, 16])) {
        // Step time ~ accum * micro + constant: halving the micro-batch
        // should not reduce total time.
        let d = dev();
        let shape = paper_shape("Small").unwrap();
        let t_small = train_step_time(&d, &shape, ExecutionPolicy::DenseMegatron, mbs, 512);
        if mbs >= 2 {
            let t_half = train_step_time(&d, &shape, ExecutionPolicy::DenseMegatron, mbs / 2, 512);
            prop_assert!(t_half >= t_small * 0.98, "mbs {mbs}: {t_small} vs half {t_half}");
        }
        let micro = micro_step_time(&d, &shape, ExecutionPolicy::DenseMegatron, mbs);
        let accum = (512 / d.device_count).div_ceil(mbs) as f64;
        prop_assert!(t_small >= accum * micro * 0.999, "step below accumulated micro time");
    }
}

#[test]
fn weight_memory_accounts_for_sharding_exactly() {
    let shape = moe_variant(paper_shape("XS").unwrap());
    let experts = shape.expert_param_count();
    let dense = shape.param_count() - experts;
    let w8 = weight_memory(&shape, 8);
    let w1 = weight_memory(&shape, 1);
    assert!((w1 - w8 - experts * (1.0 - 1.0 / 8.0) * 18.5).abs() < 1.0);
    assert!((w8 - (dense + experts / 8.0) * 18.5).abs() < 1.0);
}

#[test]
fn training_memory_is_weights_plus_activations() {
    let shape = paper_shape("Medium").unwrap();
    let total = training_memory(&shape, MemoryPolicy::Dense, 4, 8);
    let parts = weight_memory(&shape, 8) + activation_memory(&shape, MemoryPolicy::Dense, 4);
    assert_eq!(total, parts);
}

#[test]
fn moe_problem_flops_are_policy_independent() {
    // The same token loads cost the same useful FLOPs regardless of how
    // they're distributed — the quantity Figure 9 normalizes by.
    let a = MoeProblem {
        tokens_per_expert: vec![512, 256, 256],
        hidden: 256,
        ffn: 512,
        block: 128,
    };
    let b = MoeProblem::uniform(4, 1024, 256, 512, 128);
    assert_eq!(a.op_flops(), b.op_flops());
}

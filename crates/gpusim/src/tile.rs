//! Threadblock tile shapes and their pipeline efficiency.

/// A threadblock output-tile shape (`m x n`), as in CUTLASS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileShape {
    /// Tile rows.
    pub m: usize,
    /// Tile columns.
    pub n: usize,
}

impl TileShape {
    /// Creates a tile shape.
    pub const fn new(m: usize, n: usize) -> Self {
        Self { m, n }
    }

    /// The paper's selected configuration (Figure 4 / §5.1.2).
    pub const PAPER: TileShape = TileShape::new(128, 128);

    /// The tile shapes benchmarked in Figure 4 — every CUTLASS 2.5 shape,
    /// with rectangular shapes shown first-dimension-larger as in the
    /// paper.
    pub const CUTLASS_SWEEP: [TileShape; 6] = [
        TileShape::new(64, 64),
        TileShape::new(128, 64),
        TileShape::new(128, 128),
        TileShape::new(256, 64),
        TileShape::new(256, 128),
        TileShape::new(64, 32),
    ];

    /// Output elements per tile.
    pub fn area(self) -> usize {
        self.m * self.n
    }

    /// Tensor-core pipeline efficiency of this tile shape, in `(0, 1]`.
    ///
    /// Two effects, both standard GEMM-kernel lore that Figure 4
    /// visualizes:
    ///
    /// * **Intensity**: each tile dimension `t` contributes a factor
    ///   `t / (t + 32)` — small tiles spend proportionally more time on
    ///   loads/stores per MMA and cannot hide latency as well.
    /// * **Pressure**: tiles larger than 128x128 exceed the
    ///   register/shared-memory budget that permits double-buffered
    ///   mainloops at full occupancy, costing a flat 15%.
    ///
    /// The maximum over CUTLASS shapes is 128x128, matching the paper's
    /// choice.
    pub fn efficiency(self) -> f64 {
        let f = |t: usize| t as f64 / (t as f64 + 32.0);
        let mut eff = f(self.m) * f(self.n);
        if self.area() > 128 * 128 {
            eff *= 0.85;
        }
        eff
    }

    /// Number of `m`-direction tiles covering `rows`.
    pub fn tiles_m(self, rows: usize) -> usize {
        rows.div_ceil(self.m)
    }

    /// Number of `n`-direction tiles covering `cols`.
    pub fn tiles_n(self, cols: usize) -> usize {
        cols.div_ceil(self.n)
    }
}

impl std::fmt::Display for TileShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.m, self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_peaks_at_128x128() {
        let best = TileShape::CUTLASS_SWEEP
            .iter()
            .max_by(|a, b| a.efficiency().partial_cmp(&b.efficiency()).unwrap())
            .copied()
            .unwrap();
        assert_eq!(best, TileShape::PAPER);
    }

    #[test]
    fn efficiency_is_monotone_below_cap() {
        assert!(TileShape::new(64, 64).efficiency() < TileShape::new(128, 64).efficiency());
        assert!(TileShape::new(128, 64).efficiency() < TileShape::new(128, 128).efficiency());
    }

    #[test]
    fn oversized_tiles_pay_pressure_penalty() {
        // Without the pressure penalty 256x128 would beat 128x128.
        let raw = |t: TileShape| {
            let f = |x: usize| x as f64 / (x as f64 + 16.0);
            f(t.m) * f(t.n)
        };
        assert!(raw(TileShape::new(256, 128)) > raw(TileShape::PAPER));
        assert!(TileShape::new(256, 128).efficiency() < TileShape::PAPER.efficiency());
    }

    #[test]
    fn tile_counts_round_up() {
        let t = TileShape::PAPER;
        assert_eq!(t.tiles_m(1), 1);
        assert_eq!(t.tiles_m(128), 1);
        assert_eq!(t.tiles_m(129), 2);
        assert_eq!(t.tiles_n(512), 4);
    }
}

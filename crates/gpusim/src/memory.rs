//! Training-memory model: reproduces Table 3 (largest micro-batch that
//! fits in 80 GB per model and framework).
//!
//! Accounting follows Megatron-LM mixed-precision training plus the
//! activation formulas of Korthikanti et al. (2022):
//!
//! * **Parameters**: `BYTES_PER_PARAM` bytes per trainable weight (fp16
//!   param + grad, fp32 master + two Adam moments, plus
//!   gradient-buffer/fragmentation overhead — 18.5 B calibrated against
//!   the dense ladder of Table 3). Expert weights are sharded over the
//!   expert-parallel group; everything else is replicated under data
//!   parallelism.
//! * **Activations** per layer and sequence: `15·s·h` bytes for the
//!   attention side, `ATTN_SCORE_BYTES·a·s²` for the attention matrices,
//!   and the MLP side scaled by the *expansion factor* `phi` — the ratio
//!   of rows actually materialized in the FFN to `s·b`. Dense: `phi = 1`.
//!   MegaBlocks: `phi ≈ 1` plus at most one block of padding per expert.
//!   Tutel: `phi = num_experts·capacity/(s·b)`, which under the dynamic
//!   capacity factor is the realized worst-case load imbalance — the
//!   mechanism that forces Tutel to 2x/4x/8x smaller micro-batches
//!   (§6.1).
//! * **Logits**: `6·s·V` bytes (fp16 logits + fp32 softmax workspace).

use crate::DeviceSpec;

/// Bytes of optimizer + weight state per trainable parameter.
pub const BYTES_PER_PARAM: f64 = 18.5;
/// Activation bytes per attention-score element group (`a·s²` per layer
/// per sequence): two fp16 `s x s` tensors per head plus workspace.
pub const ATTN_SCORE_BYTES: f64 = 4.0;
/// Attention-side activation bytes per token per hidden unit.
pub const ATTN_ACT: f64 = 15.0;
/// MLP-side activation bytes per token per hidden unit (at `phi = 1`).
pub const MLP_ACT: f64 = 19.0;
/// Router/permutation buffer bytes per token per hidden unit in MoE
/// layers.
pub const MOE_DISPATCH_ACT: f64 = 7.0;
/// Logit + loss workspace bytes per token per vocab entry.
pub const LOGIT_BYTES: f64 = 6.0;

/// Architectural shape of a model, decoupled from the training crates so
/// the performance model stays dependency-light.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelShape {
    /// Hidden size.
    pub hidden: usize,
    /// Number of layers.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Sequence length.
    pub seq: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// FFN hidden size (per expert for MoE).
    pub ffn: usize,
    /// Number of experts (None = dense FFN).
    pub experts: Option<usize>,
}

impl ModelShape {
    /// Total trainable parameters (tied embeddings, biased attention and
    /// dense FFN, bias-free experts + router) — mirrors
    /// `TransformerConfig::param_count`.
    pub fn param_count(&self) -> f64 {
        let h = self.hidden as f64;
        let embeddings = (self.vocab + self.seq) as f64 * h;
        let attn = 4.0 * h * h + 4.0 * h;
        let ln = 4.0 * h;
        let ffn = match self.experts {
            None => 2.0 * h * self.ffn as f64 + self.ffn as f64 + h,
            Some(e) => h * e as f64 + e as f64 * 2.0 * h * self.ffn as f64,
        };
        embeddings + self.layers as f64 * (attn + ln + ffn) + 2.0 * h
    }

    /// Parameters belonging to experts (sharded under expert parallelism).
    pub fn expert_param_count(&self) -> f64 {
        match self.experts {
            None => 0.0,
            Some(e) => self.layers as f64 * e as f64 * 2.0 * self.hidden as f64 * self.ffn as f64,
        }
    }
}

/// How the FFN layers are executed, for memory purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryPolicy {
    /// Dense FFN (Megatron-LM baseline).
    Dense,
    /// MegaBlocks dMoE: expansion is 1 plus at most one 128-row block of
    /// padding per expert.
    MegaBlocks,
    /// Token-dropping/padding MoE with the given effective expansion
    /// factor `phi = num_experts * capacity / (s * b)`. For a fixed
    /// capacity factor this is the capacity factor itself; for Tutel's
    /// dynamic capacity it is the worst-case load imbalance realized over
    /// the run (Tutel sizes its buffers for the spikes — Hwang et al.
    /// observed values up to 11).
    Tutel {
        /// The expansion factor `phi`.
        expansion: f64,
    },
}

/// Per-GPU weight + optimizer memory in bytes under `expert_parallel`-way
/// expert parallelism (the paper uses 8).
pub fn weight_memory(shape: &ModelShape, expert_parallel: usize) -> f64 {
    let expert = shape.expert_param_count();
    let dense = shape.param_count() - expert;
    (dense + expert / expert_parallel as f64) * BYTES_PER_PARAM
}

/// Per-GPU activation memory in bytes for one micro-batch of
/// `micro_batch` sequences.
pub fn activation_memory(shape: &ModelShape, policy: MemoryPolicy, micro_batch: usize) -> f64 {
    let s = shape.seq as f64;
    let h = shape.hidden as f64;
    let b = micro_batch as f64;
    let tokens = s * b;

    let attn_side = ATTN_ACT * tokens * h + ATTN_SCORE_BYTES * shape.heads as f64 * s * s * b;
    let mlp_side = match policy {
        MemoryPolicy::Dense => MLP_ACT * tokens * h,
        MemoryPolicy::MegaBlocks => {
            // At most one 128-row padding block per expert.
            let experts = shape.experts.unwrap_or(1) as f64;
            let padded = tokens + experts * 128.0;
            MLP_ACT * padded * h + MOE_DISPATCH_ACT * tokens * h
        }
        MemoryPolicy::Tutel { expansion } => (MLP_ACT + MOE_DISPATCH_ACT) * expansion * tokens * h,
    };
    let per_layer = attn_side + mlp_side;
    shape.layers as f64 * per_layer + LOGIT_BYTES * tokens * shape.vocab as f64
}

/// Total per-GPU training memory in bytes.
pub fn training_memory(
    shape: &ModelShape,
    policy: MemoryPolicy,
    micro_batch: usize,
    expert_parallel: usize,
) -> f64 {
    weight_memory(shape, expert_parallel) + activation_memory(shape, policy, micro_batch)
}

/// The largest power-of-two micro-batch (≥ 1) that fits in device memory,
/// or `None` if even a single sequence does not fit — the quantity
/// Table 3 reports.
pub fn max_micro_batch(
    device: &DeviceSpec,
    shape: &ModelShape,
    policy: MemoryPolicy,
    expert_parallel: usize,
) -> Option<usize> {
    let mut best = None;
    let mut b = 1usize;
    while b <= 512 {
        if training_memory(shape, policy, b, expert_parallel) <= device.mem_capacity {
            best = Some(b);
        } else {
            break;
        }
        b *= 2;
    }
    best
}

/// The paper's Table 1/2 shapes by name, for the Table 3 harness.
pub fn paper_shape(name: &str) -> Option<ModelShape> {
    let (hidden, layers) = match name {
        "XS" => (512, 6),
        "Small" => (768, 12),
        "Medium" => (1024, 24),
        "Large" => (1536, 24),
        "XL" => (2048, 24),
        _ => return None,
    };
    Some(ModelShape {
        hidden,
        layers,
        heads: hidden / 64,
        seq: 1024,
        vocab: 51200,
        ffn: 4 * hidden,
        experts: None,
    })
}

/// Converts a dense shape to its 64-expert MoE variant (Table 2).
pub fn moe_variant(mut shape: ModelShape) -> ModelShape {
    shape.experts = Some(64);
    shape
}

/// Calibrated worst-case expansion factors for Tutel's dynamic capacity
/// factor, by model name. The dynamic capacity tracks the *maximum* expert
/// load, and buffers are sized for the spikes observed over the run
/// (Hwang et al. report required capacity factors past 11 for some
/// models); deeper models see worse spikes.
pub fn tutel_dynamic_expansion(name: &str) -> f64 {
    match name {
        "XS" => 9.0,
        "Small" => 15.0,
        "Medium" => 34.0,
        _ => 9.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100_sxm4_80gb()
    }

    #[test]
    fn table3_megatron_dense_ladder() {
        let want = [
            ("XS", 64),
            ("Small", 32),
            ("Medium", 16),
            ("Large", 16),
            ("XL", 8),
        ];
        for (name, mbs) in want {
            let shape = paper_shape(name).unwrap();
            let got = max_micro_batch(&dev(), &shape, MemoryPolicy::Dense, 8).unwrap();
            assert_eq!(got, mbs, "Megatron Transformer-{name}");
        }
    }

    #[test]
    fn table3_megablocks_ladder() {
        let want = [("XS", 64), ("Small", 32), ("Medium", 8)];
        for (name, mbs) in want {
            let shape = moe_variant(paper_shape(name).unwrap());
            let got = max_micro_batch(&dev(), &shape, MemoryPolicy::MegaBlocks, 8).unwrap();
            assert_eq!(got, mbs, "MegaBlocks dMoE-{name}");
        }
    }

    #[test]
    fn table3_tutel_ladder() {
        let want = [("XS", 32), ("Small", 8), ("Medium", 1)];
        for (name, mbs) in want {
            let shape = moe_variant(paper_shape(name).unwrap());
            let policy = MemoryPolicy::Tutel {
                expansion: tutel_dynamic_expansion(name),
            };
            let got = max_micro_batch(&dev(), &shape, policy, 8).unwrap();
            assert_eq!(got, mbs, "Tutel dMoE-{name}");
        }
    }

    #[test]
    fn tutel_micro_batch_gap_matches_paper() {
        // §6.1: Tutel's max micro-batch is 2x, 4x, 8x smaller than
        // MegaBlocks' for XS, Small, Medium.
        for (name, gap) in [("XS", 2), ("Small", 4), ("Medium", 8)] {
            let shape = moe_variant(paper_shape(name).unwrap());
            let mb = max_micro_batch(&dev(), &shape, MemoryPolicy::MegaBlocks, 8).unwrap();
            let tu = max_micro_batch(
                &dev(),
                &shape,
                MemoryPolicy::Tutel {
                    expansion: tutel_dynamic_expansion(name),
                },
                8,
            )
            .unwrap();
            assert_eq!(mb / tu, gap, "gap for {name}");
        }
    }

    #[test]
    fn param_counts_match_table_values() {
        let xs = paper_shape("XS").unwrap();
        assert!((xs.param_count() / 1e6 - 46.0).abs() < 1.0);
        let moe_xs = moe_variant(xs);
        assert!((moe_xs.param_count() / 1e6 - 839.0).abs() < 9.0);
        let moe_med = moe_variant(paper_shape("Medium").unwrap());
        assert!((moe_med.param_count() / 1e6 - 13041.0).abs() < 131.0);
    }

    #[test]
    fn expert_sharding_reduces_weight_memory() {
        let shape = moe_variant(paper_shape("Medium").unwrap());
        let one_way = weight_memory(&shape, 1);
        let eight_way = weight_memory(&shape, 8);
        assert!(eight_way < one_way / 3.0);
    }

    #[test]
    fn activation_memory_scales_linearly_in_batch() {
        let shape = paper_shape("Small").unwrap();
        let a1 = activation_memory(&shape, MemoryPolicy::Dense, 1);
        let a8 = activation_memory(&shape, MemoryPolicy::Dense, 8);
        assert!((a8 / a1 - 8.0).abs() < 1e-9);
    }

    #[test]
    fn higher_expansion_means_more_memory() {
        let shape = moe_variant(paper_shape("XS").unwrap());
        let lo = activation_memory(&shape, MemoryPolicy::Tutel { expansion: 1.0 }, 8);
        let hi = activation_memory(&shape, MemoryPolicy::Tutel { expansion: 8.0 }, 8);
        assert!(hi > lo * 1.5);
    }
}

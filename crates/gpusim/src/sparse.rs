//! Block-sparse kernel timing for the dMoE products, and the ablations of
//! §5.1.3 (hybrid blocked-CSR-COO vs dense-grid launch) and §5.1.4
//! (transpose indices vs explicit transposition).

use crate::dense::{cublas_batched_time, ELEM_BYTES};
use crate::{DeviceSpec, TileShape};

/// The six matrix products of a 2-layer dMoE FFN (paper §5.1): forward
/// (SDD, DSD) and backward (SDD^T and DS^TD for layer 2, DSD^T and DD^TS
/// for layer 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoeOp {
    /// Layer-1 forward: sparse = tokens x w1.
    Sdd,
    /// Layer-2 forward: dense = sparse x w2.
    Dsd,
    /// Layer-2 data gradient: sparse = dy x w2^T.
    SddT,
    /// Layer-2 weight gradient: dense = sparse^T x dy (transpose-indexed).
    DstD,
    /// Layer-1 data gradient: dense = sparse x w1^T.
    DsdT,
    /// Layer-1 weight gradient: dense = x^T x sparse (transpose-indexed).
    DdtS,
}

impl MoeOp {
    /// All six ops in forward-then-backward order — one Figure 9 problem
    /// group.
    pub const ALL: [MoeOp; 6] = [
        MoeOp::Sdd,
        MoeOp::Dsd,
        MoeOp::SddT,
        MoeOp::DstD,
        MoeOp::DsdT,
        MoeOp::DdtS,
    ];

    /// Short label used in reports ("SDD", "DS^TD", ...).
    pub fn label(self) -> &'static str {
        match self {
            MoeOp::Sdd => "SDD",
            MoeOp::Dsd => "DSD",
            MoeOp::SddT => "SDD^T",
            MoeOp::DstD => "DS^TD",
            MoeOp::DsdT => "DSD^T",
            MoeOp::DdtS => "DD^TS",
        }
    }

    /// Whether this op traverses the sparse operand in transposed order
    /// through the secondary index (§5.1.4) — the ops the paper observes
    /// extra overhead on.
    pub fn uses_transpose_index(self) -> bool {
        matches!(self, MoeOp::DstD | MoeOp::DdtS)
    }
}

/// How SDD threadblocks find their output block (§5.1.3 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SddLaunch {
    /// One threadblock per nonzero block; coordinates come from the hybrid
    /// blocked-CSR-COO metadata in O(1) — MegaBlocks' strategy.
    HybridCoo,
    /// Launch the full dense grid and early-exit empty blocks — the
    /// Gale et al. (2020) strategy, cheap at 50-90% sparsity but not at
    /// MoE-level (>98%) sparsity.
    DenseGrid,
}

/// One dMoE FFN kernel workload: per-expert (padded) token counts plus the
/// layer dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct MoeProblem {
    /// Padded tokens routed to each expert (multiples of `block`).
    pub tokens_per_expert: Vec<usize>,
    /// Model hidden size.
    pub hidden: usize,
    /// Per-expert FFN hidden size.
    pub ffn: usize,
    /// Sparsity block size (128 in the paper).
    pub block: usize,
}

impl MoeProblem {
    /// A uniform problem: `tokens` split evenly over `num_experts` — the
    /// distribution Figure 9 benchmarks (so cuBLAS batched is applicable).
    ///
    /// # Panics
    ///
    /// Panics if `tokens` is not divisible by `num_experts * block`.
    pub fn uniform(
        num_experts: usize,
        tokens: usize,
        hidden: usize,
        ffn: usize,
        block: usize,
    ) -> Self {
        assert!(
            tokens.is_multiple_of(num_experts * block),
            "uniform problem needs tokens divisible by num_experts * block"
        );
        Self {
            tokens_per_expert: vec![tokens / num_experts; num_experts],
            hidden,
            ffn,
            block,
        }
    }

    /// Builds a problem from *raw* per-expert loads, padding each to the
    /// block size (what `padded_gather` does at runtime). Used by the
    /// block-size ablation: larger blocks waste more rows on padding but
    /// run at higher per-tile efficiency.
    ///
    /// # Panics
    ///
    /// Panics if `ffn` is not a multiple of `block`.
    pub fn from_loads(loads: &[usize], hidden: usize, ffn: usize, block: usize) -> Self {
        assert!(
            ffn.is_multiple_of(block),
            "ffn must be a multiple of the block size"
        );
        Self {
            tokens_per_expert: loads.iter().map(|&t| t.div_ceil(block) * block).collect(),
            hidden,
            ffn,
            block,
        }
    }

    /// Total (padded) tokens.
    pub fn total_tokens(&self) -> usize {
        self.tokens_per_expert.iter().sum()
    }

    /// Time of the full 6-product forward+backward kernel set.
    pub fn layer_time(&self, device: &DeviceSpec) -> f64 {
        MoeOp::ALL
            .iter()
            .map(|&op| moe_op_time(device, self, op))
            .sum()
    }

    /// Number of experts.
    pub fn num_experts(&self) -> usize {
        self.tokens_per_expert.len()
    }

    /// Nonzero blocks in the block-diagonal topology.
    pub fn nnz_blocks(&self) -> usize {
        let cols = self.ffn / self.block;
        self.tokens_per_expert
            .iter()
            .map(|t| t.div_ceil(self.block) * cols)
            .sum()
    }

    /// Useful FLOPs of one op (identical for all six: `2 * T * ffn *
    /// hidden` summed over experts).
    pub fn op_flops(&self) -> f64 {
        2.0 * self.total_tokens() as f64 * self.ffn as f64 * self.hidden as f64
    }
}

/// Time of one dMoE block-sparse product with the MegaBlocks strategy.
pub fn moe_op_time(device: &DeviceSpec, problem: &MoeProblem, op: MoeOp) -> f64 {
    moe_op_time_with(device, problem, op, SddLaunch::HybridCoo, false)
}

/// Full-control variant: choose the SDD launch strategy and whether
/// transposed traversal materializes an explicit transpose (the §5.1.4
/// ablation) instead of using transpose indices.
pub fn moe_op_time_with(
    device: &DeviceSpec,
    problem: &MoeProblem,
    op: MoeOp,
    launch: SddLaunch,
    explicit_transpose: bool,
) -> f64 {
    // Tile dimensions track the sparsity block size (§5.1.2: "for 128x128
    // blocks the highest performing tile dimensions ... were also
    // 128x128"); the block-size ablation sweeps this.
    let bs = problem.block;
    let tile = TileShape::new(bs, bs);
    let nnz_tiles = problem.nnz_blocks();
    let sm = device.sm_count;
    let per_sm = device.sm_peak_flops() * tile.efficiency();

    let mut time = match op {
        MoeOp::Sdd | MoeOp::SddT => {
            // Grid = nonzero output blocks; K = hidden.
            let waves = nnz_tiles.div_ceil(sm);
            let tile_time = 2.0 * tile.area() as f64 * problem.hidden as f64 / per_sm;
            let compute = waves as f64 * tile_time;
            let traffic = ELEM_BYTES
                * (problem.total_tokens() * problem.hidden // read tokens
                    + problem.hidden * problem.ffn * problem.num_experts() // read weights
                    + problem.nnz_blocks() * bs * bs) as f64; // write sparse output
            let mut t = compute.max(traffic / device.mem_bandwidth);
            if launch == SddLaunch::DenseGrid {
                // Dense grid: (T/bs) x (E*ffn/bs) threadblocks, the empty
                // ones early-exit but still get scheduled.
                let grid = problem.total_tokens().div_ceil(bs)
                    * (problem.ffn * problem.num_experts()).div_ceil(bs);
                let idle = grid.saturating_sub(nnz_tiles);
                t += idle as f64 * device.threadblock_overhead / sm as f64;
            }
            t
        }
        MoeOp::Dsd | MoeOp::DsdT => {
            // Dense output (T x hidden); each output tile contracts over
            // the expert's ffn columns.
            let tiles = tile.tiles_m(problem.total_tokens()) * tile.tiles_n(problem.hidden);
            let waves = tiles.div_ceil(sm);
            let tile_time = 2.0 * tile.area() as f64 * problem.ffn as f64 / per_sm;
            let compute = waves as f64 * tile_time;
            let traffic = ELEM_BYTES
                * (problem.nnz_blocks() * bs * bs
                    + problem.hidden * problem.ffn * problem.num_experts()
                    + problem.total_tokens() * problem.hidden) as f64;
            compute.max(traffic / device.mem_bandwidth)
        }
        MoeOp::DstD | MoeOp::DdtS => {
            // Weight gradients: dense output (E*ffn x hidden) or
            // (hidden x E*ffn); contraction over each expert's tokens.
            let n_other = problem.hidden;
            let tiles_weight =
                (problem.ffn * problem.num_experts()).div_ceil(tile.m) * n_other.div_ceil(tile.n);
            let waves = tiles_weight.div_ceil(sm);
            // Per-tile K is that expert's token count; take the mean via
            // total flops spread over tiles (experts with more tokens own
            // proportionally slower tiles, but waves interleave).
            //
            // Iterating the sparse operand through the transpose secondary
            // index exposes L2-miss latency in the mainloop (the "little
            // spatial locality" effect of §6.3) — modeled as a pipeline
            // efficiency hit unless the matrix was explicitly transposed.
            let locality = if explicit_transpose { 1.0 } else { 0.93 };
            let compute_ideal = problem.op_flops() / (per_sm * locality * sm as f64);
            let wave_quant = waves as f64 / (tiles_weight as f64 / sm as f64).max(1e-9);
            let compute = compute_ideal * wave_quant.max(1.0);

            // Transposed traversal: each column of output tiles re-reads
            // the sparse operand through the secondary index with poor L2
            // reuse (paper: "little spatial locality"). Explicit
            // transposition instead pays a full copy of the nonzeros.
            let sparse_bytes = ELEM_BYTES * (problem.nnz_blocks() * bs * bs) as f64;
            let reuse_columns = n_other.div_ceil(tile.n) as f64;
            let sparse_traffic = if explicit_transpose {
                sparse_bytes // read once post-transpose (good locality)
            } else {
                sparse_bytes * reuse_columns.min(3.0) // re-fetched per tile column (partial L2 reuse)
            };
            let dense_traffic = ELEM_BYTES
                * (problem.total_tokens() * problem.hidden
                    + problem.hidden * problem.ffn * problem.num_experts())
                    as f64;
            let mut t = compute.max((sparse_traffic + dense_traffic) / device.mem_bandwidth);
            if explicit_transpose {
                // The transposition pass itself: read + write every nonzero
                // value plus a metadata rebuild kernel.
                t += 2.0 * sparse_bytes / device.mem_bandwidth + device.kernel_launch;
            }
            t
        }
    };

    // Metadata loads: one column index + one row index per block (hybrid
    // encoding); transpose-indexed ops read the secondary index too.
    let meta_entries = if op.uses_transpose_index() { 3 } else { 2 };
    time += (problem.nnz_blocks() * meta_entries * 4) as f64 / device.mem_bandwidth;
    time + device.kernel_launch
}

/// cuBLAS batched-GEMM time for the same op under a *uniform* token
/// distribution — the Figure 9 baseline.
///
/// # Panics
///
/// Panics if the problem's experts have unequal token counts (batched
/// matmul cannot express that — the paper's point).
pub fn cublas_op_time(device: &DeviceSpec, problem: &MoeProblem, op: MoeOp) -> f64 {
    let cap = problem.tokens_per_expert[0];
    assert!(
        problem.tokens_per_expert.iter().all(|&t| t == cap),
        "cuBLAS batched requires a uniform distribution"
    );
    let e = problem.num_experts();
    let (m, n, k) = match op {
        MoeOp::Sdd | MoeOp::SddT => (cap, problem.ffn, problem.hidden),
        MoeOp::Dsd | MoeOp::DsdT => (cap, problem.hidden, problem.ffn),
        MoeOp::DstD => (problem.ffn, problem.hidden, cap),
        MoeOp::DdtS => (problem.hidden, problem.ffn, cap),
    };
    cublas_batched_time(device, m, n, k, e)
}

/// Relative throughput of the block-sparse kernel vs cuBLAS batched for
/// one op (the y-axis of Figure 9; >1 means the sparse kernel wins).
pub fn relative_throughput(device: &DeviceSpec, problem: &MoeProblem, op: MoeOp) -> f64 {
    cublas_op_time(device, problem, op) / moe_op_time(device, problem, op)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100_sxm4_80gb()
    }

    /// MoE-XS kernel problem at its Table 3 micro-batch (64 seqs x 1024).
    fn xs_problem() -> MoeProblem {
        MoeProblem::uniform(64, 64 * 1024, 512, 2048, 128)
    }

    #[test]
    fn uniform_splits_evenly() {
        let p = xs_problem();
        assert_eq!(p.total_tokens(), 65536);
        assert_eq!(p.tokens_per_expert[0], 1024);
        assert_eq!(p.nnz_blocks(), 64 * 8 * 16);
    }

    #[test]
    fn relative_throughput_is_near_parity() {
        // Figure 9: 98.6% average, min 91%, max 104%.
        let p = xs_problem();
        let mut ratios = Vec::new();
        for op in MoeOp::ALL {
            let r = relative_throughput(&dev(), &p, op);
            assert!(
                (0.85..=1.10).contains(&r),
                "{}: relative throughput {r}",
                op.label()
            );
            ratios.push(r);
        }
        let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(
            (0.93..=1.02).contains(&mean),
            "mean relative throughput {mean}"
        );
    }

    #[test]
    fn transpose_indexed_ops_are_the_slowest() {
        let p = xs_problem();
        let d = dev();
        let worst = MoeOp::ALL
            .iter()
            .min_by(|a, b| {
                relative_throughput(&d, &p, **a)
                    .partial_cmp(&relative_throughput(&d, &p, **b))
                    .unwrap()
            })
            .copied()
            .unwrap();
        assert!(
            worst.uses_transpose_index(),
            "worst op should be a weight gradient, got {}",
            worst.label()
        );
    }

    #[test]
    fn dense_grid_launch_is_costly_at_high_expert_counts() {
        // §5.1.3: idle-threadblock overhead grows with expert count.
        let d = dev();
        let mk = |experts: usize| MoeProblem::uniform(experts, 8192, 1024, 4096, 128);
        let overhead = |experts: usize| {
            let p = mk(experts);
            let hybrid = moe_op_time_with(&d, &p, MoeOp::Sdd, SddLaunch::HybridCoo, false);
            let dense = moe_op_time_with(&d, &p, MoeOp::Sdd, SddLaunch::DenseGrid, false);
            dense / hybrid
        };
        assert!(overhead(64) > 1.10, "64 experts: {}", overhead(64));
        assert!(
            overhead(64) > overhead(4),
            "overhead should grow with experts"
        );
    }

    #[test]
    fn explicit_transpose_is_slower_than_transpose_indices() {
        let p = xs_problem();
        let d = dev();
        let fast = moe_op_time_with(&d, &p, MoeOp::DstD, SddLaunch::HybridCoo, false);
        let slow = moe_op_time_with(&d, &p, MoeOp::DstD, SddLaunch::HybridCoo, true);
        assert!(slow > fast, "explicit {slow} vs indices {fast}");
    }

    #[test]
    fn imbalanced_problems_cost_their_actual_flops() {
        // The whole point of dMoE: an imbalanced assignment costs what it
        // computes, not the worst case.
        let d = dev();
        let balanced = MoeProblem::uniform(4, 4096, 512, 2048, 128);
        let imbalanced = MoeProblem {
            tokens_per_expert: vec![2048, 1024, 512, 512],
            ..balanced.clone()
        };
        let tb = moe_op_time(&d, &balanced, MoeOp::Sdd);
        let ti = moe_op_time(&d, &imbalanced, MoeOp::Sdd);
        // Same total tokens -> nearly the same time.
        assert!(
            (ti / tb - 1.0).abs() < 0.05,
            "balanced {tb}, imbalanced {ti}"
        );
    }
}

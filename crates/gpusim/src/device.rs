/// Hardware parameters of the simulated accelerator.
///
/// Defaults describe the paper's testbed: an NVIDIA A100 SXM4 80GB at
/// mixed precision (FP16 inputs, FP32 accumulation).
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, for report labels.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Peak mixed-precision tensor-core throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Device memory capacity in bytes.
    pub mem_capacity: f64,
    /// Kernel launch latency in seconds.
    pub kernel_launch: f64,
    /// Scheduling cost of one (possibly idle) threadblock in seconds —
    /// what an early-exiting block in the dense-grid SDD strategy costs.
    pub threadblock_overhead: f64,
    /// Per-device share of inter-GPU (NVLink) bandwidth in bytes/s, used
    /// by the expert-parallel all-to-all model.
    pub interconnect_bandwidth: f64,
    /// Number of devices in the training system (the paper uses 8).
    pub device_count: usize,
}

impl DeviceSpec {
    /// The paper's testbed: 8x A100 SXM4 80GB, CUDA 11.5.
    pub fn a100_sxm4_80gb() -> Self {
        Self {
            name: "A100-SXM4-80GB".to_string(),
            sm_count: 108,
            peak_flops: 312e12,
            mem_bandwidth: 2.039e12,
            mem_capacity: 80e9,
            kernel_launch: 4e-6,
            threadblock_overhead: 0.15e-6,
            interconnect_bandwidth: 300e9, // NVLink3 per-direction, per GPU
            device_count: 8,
        }
    }

    /// Aggregate peak FLOP/s of the whole system
    /// (`device_count * peak_flops`), the 2.5 petaFLOP figure of §6.1.
    pub fn system_peak_flops(&self) -> f64 {
        self.peak_flops * self.device_count as f64
    }

    /// Per-SM peak FLOP/s.
    pub fn sm_peak_flops(&self) -> f64 {
        self.peak_flops / self.sm_count as f64
    }
}

impl Default for DeviceSpec {
    fn default() -> Self {
        Self::a100_sxm4_80gb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_matches_paper_system() {
        let d = DeviceSpec::a100_sxm4_80gb();
        // "2.5 petaFLOP peak throughput of this 8-GPU system" (§6.1).
        assert!((d.system_peak_flops() - 2.496e15).abs() < 1e13);
        assert_eq!(d.sm_count, 108);
        assert!((d.mem_capacity - 80e9).abs() < 1.0);
    }
}

//! End-to-end training step time: the time axis of Figures 7 and 8.
//!
//! A training step is `global_batch / micro_batch` gradient-accumulation
//! micro-steps, each a forward plus backward pass, followed by the
//! optimizer update and the data-parallel gradient all-reduce. Each GEMM
//! goes through the tile model of [`crate::dense`]; dMoE expert layers go
//! through the block-sparse model of [`crate::sparse`]; token-dropping MoE
//! layers pay batched matmul on their padded capacity plus dispatch
//! traffic. Expert model parallelism (8-way in the paper) contributes
//! all-to-all time on the interconnect.

use crate::dense::{cublas_batched_time, gemm_time, gemm_time_batched, ELEM_BYTES};
use crate::memory::ModelShape;
use crate::sparse::{moe_op_time, MoeOp, MoeProblem};
use crate::{DeviceSpec, TileShape};

/// How the FFN layers execute, for timing purposes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExecutionPolicy {
    /// Dense FFN (Megatron-LM).
    DenseMegatron,
    /// MegaBlocks dMoE with block-sparse kernels.
    MegaBlocks,
    /// Token-dropping/padding MoE via batched matmul, computing
    /// `expansion` times the dropless FLOPs (the capacity factor, or the
    /// per-step average of Tutel's dynamic factor).
    Tutel {
        /// Average compute expansion per step.
        expansion: f64,
    },
}

/// Average per-step compute expansion of Tutel's dynamic capacity factor,
/// by model name. The *average* expansion (which sets compute time) is far
/// below the worst-case expansion that sizes memory
/// ([`crate::memory::tutel_dynamic_expansion`]); imbalance grows with
/// scale.
pub fn tutel_dynamic_avg_expansion(name: &str) -> f64 {
    match name {
        "XS" => 2.6,
        "Small" => 3.6,
        "Medium" => 4.0,
        _ => 2.6,
    }
}

/// Multiplier on modeled kernel time accounting for everything a
/// kernel-level model misses — gaps between launches, dataloader and host
/// overhead, imperfect communication overlap. Calibrated so Megatron's
/// model-FLOPs utilization lands in the 21-48% band §6.1 reports.
const FRAMEWORK_OVERHEAD: f64 = 1.25;

/// Per-layer host cost of Tutel's dynamic capacity factor: a
/// device-to-host sync to read the realized max load, plus allocator
/// churn when the capacity grows (cudaMalloc stalls).
const DYNAMIC_CAPACITY_SYNC: f64 = 1e-3;

fn attention_time(device: &DeviceSpec, shape: &ModelShape, micro_batch: usize) -> f64 {
    let h = shape.hidden;
    let s = shape.seq;
    let b = micro_batch;
    let d = h / shape.heads;
    let tokens = s * b;
    let qkv = gemm_time(device, TileShape::PAPER, tokens, 3 * h, h);
    let scores = gemm_time_batched(device, TileShape::PAPER, s, s, d, b * shape.heads);
    let ctx = gemm_time_batched(device, TileShape::PAPER, s, d, s, b * shape.heads);
    let proj = gemm_time(device, TileShape::PAPER, tokens, h, h);
    // Layernorm + residual + dropout: memory passes over token activations.
    let elementwise = 8.0 * tokens as f64 * h as f64 * ELEM_BYTES / device.mem_bandwidth;
    // Score softmax, masking and dropout: memory passes over the a*s*s
    // attention matrices — the dominant non-GEMM cost at small hidden
    // sizes (one reason small models sustain lower MFU, §6.1).
    let score_elementwise =
        10.0 * (shape.heads * s * s * b) as f64 * ELEM_BYTES / device.mem_bandwidth;
    qkv + scores + ctx + proj + elementwise + score_elementwise
}

fn dense_ffn_time(device: &DeviceSpec, shape: &ModelShape, micro_batch: usize) -> f64 {
    let tokens = shape.seq * micro_batch;
    gemm_time(device, TileShape::PAPER, tokens, shape.ffn, shape.hidden)
        + gemm_time(device, TileShape::PAPER, tokens, shape.hidden, shape.ffn)
}

/// All-to-all time for dispatching `rows` token rows of `hidden` features
/// across the expert-parallel group (7/8 of rows leave the device), one
/// direction.
fn all_to_all_time(device: &DeviceSpec, rows: f64, hidden: usize) -> f64 {
    let remote_fraction = (device.device_count - 1) as f64 / device.device_count as f64;
    rows * hidden as f64 * ELEM_BYTES * remote_fraction / device.interconnect_bandwidth + 50e-6
}

fn dmoe_ffn_time(device: &DeviceSpec, shape: &ModelShape, micro_batch: usize) -> (f64, f64) {
    let experts = shape.experts.expect("dMoE needs an expert count");
    let tokens = shape.seq * micro_batch;
    let h = shape.hidden;
    // Uniform-ish load with block padding; per-GPU tokens stay s*b under
    // expert parallelism (all-to-all rebalances).
    let per_expert = (tokens / experts).max(1).div_ceil(128) * 128;
    let problem = MoeProblem {
        tokens_per_expert: vec![per_expert; experts],
        hidden: h,
        ffn: shape.ffn,
        block: 128,
    };
    let router = gemm_time(device, TileShape::PAPER, tokens, experts, h);
    let topology_build = 10e-6; // custom metadata kernel (§5.2)
    let permute = 4.0 * tokens as f64 * h as f64 * ELEM_BYTES / device.mem_bandwidth;
    let a2a = 2.0 * all_to_all_time(device, tokens as f64, h);
    let fwd = router
        + topology_build
        + permute
        + a2a
        + moe_op_time(device, &problem, MoeOp::Sdd)
        + moe_op_time(device, &problem, MoeOp::Dsd);
    let bwd = permute
        + a2a
        + moe_op_time(device, &problem, MoeOp::SddT)
        + moe_op_time(device, &problem, MoeOp::DstD)
        + moe_op_time(device, &problem, MoeOp::DsdT)
        + moe_op_time(device, &problem, MoeOp::DdtS)
        + router * 2.0;
    (fwd, bwd)
}

fn tutel_ffn_time(
    device: &DeviceSpec,
    shape: &ModelShape,
    micro_batch: usize,
    expansion: f64,
) -> (f64, f64) {
    let experts = shape.experts.expect("MoE needs an expert count");
    let tokens = shape.seq * micro_batch;
    let h = shape.hidden;
    // Capacity per expert (padded rows actually computed).
    let cap = ((tokens as f64 * expansion / experts as f64).ceil() as usize).max(1);
    let local_experts = experts / device.device_count;
    // Each GPU computes its local experts over the gathered global batch
    // slice; per-GPU row count is cap * local_experts * device_count /
    // device_count = cap * local_experts... the full expert grid spans the
    // device group, so per-GPU work is cap rows for each local expert
    // times the number of incoming device slices — net: experts/devices
    // experts at capacity scaled by devices = cap * experts / devices.
    let batch = local_experts * device.device_count; // == experts
    let router = gemm_time(device, TileShape::PAPER, tokens, experts, h);
    let padded_rows = cap as f64 * experts as f64;
    // Dispatch/combine: scatter into the padded buffer and back.
    let dispatch = 6.0 * padded_rows * h as f64 * ELEM_BYTES / device.mem_bandwidth;
    let a2a = 2.0 * all_to_all_time(device, padded_rows, h);
    let l1 = cublas_batched_time(device, cap, shape.ffn, h, batch);
    let l2 = cublas_batched_time(device, cap, h, shape.ffn, batch);
    let fwd = router + dispatch + a2a + l1 + l2;
    let bwd = dispatch + a2a + 2.0 * (l1 + l2) + router * 2.0;
    (fwd, bwd)
}

/// Time of one forward+backward micro-step on one GPU.
pub fn micro_step_time(
    device: &DeviceSpec,
    shape: &ModelShape,
    policy: ExecutionPolicy,
    micro_batch: usize,
) -> f64 {
    let tokens = shape.seq * micro_batch;
    let attn_fwd = attention_time(device, shape, micro_batch);
    let (ffn_fwd, ffn_bwd) = match policy {
        ExecutionPolicy::DenseMegatron => {
            let f = dense_ffn_time(device, shape, micro_batch);
            (f, 2.0 * f)
        }
        ExecutionPolicy::MegaBlocks => dmoe_ffn_time(device, shape, micro_batch),
        ExecutionPolicy::Tutel { expansion } => {
            tutel_ffn_time(device, shape, micro_batch, expansion)
        }
    };
    let logits = gemm_time(device, TileShape::PAPER, tokens, shape.vocab, shape.hidden);
    let fwd = shape.layers as f64 * (attn_fwd + ffn_fwd) + logits;
    let bwd = shape.layers as f64 * (2.0 * attn_fwd + ffn_bwd) + 2.0 * logits;
    let sync = match policy {
        ExecutionPolicy::Tutel { .. } => shape.layers as f64 * DYNAMIC_CAPACITY_SYNC,
        _ => 0.0,
    };
    (fwd + bwd) * FRAMEWORK_OVERHEAD + sync
}

/// Time of one optimizer step: gradient accumulation over
/// `global_batch / micro_batch` micro-steps plus optimizer update and
/// data-parallel gradient all-reduce.
///
/// # Panics
///
/// Panics if `micro_batch` does not divide `global_batch`.
pub fn train_step_time(
    device: &DeviceSpec,
    shape: &ModelShape,
    policy: ExecutionPolicy,
    micro_batch: usize,
    global_batch: usize,
) -> f64 {
    assert!(
        global_batch.is_multiple_of(micro_batch),
        "micro_batch must divide global_batch"
    );
    // Sequences are spread over the data-parallel group.
    let per_gpu = (global_batch / device.device_count).max(1);
    let accum = per_gpu.div_ceil(micro_batch);
    let micro = micro_step_time(device, shape, policy, micro_batch);

    // Optimizer touches all local state; dense grads all-reduce over DP.
    let expert = shape.expert_param_count();
    let dense = shape.param_count() - expert;
    let local_params = dense + expert / device.device_count as f64;
    let optimizer = local_params * 18.5 / device.mem_bandwidth;
    let allreduce = 2.0 * dense * ELEM_BYTES / device.interconnect_bandwidth;

    accum as f64 * micro + optimizer + allreduce
}

/// Wall-clock hours to train on `total_tokens` tokens at the paper's
/// global batch of 512 sequences of 1024 tokens.
pub fn end_to_end_hours(
    device: &DeviceSpec,
    shape: &ModelShape,
    policy: ExecutionPolicy,
    micro_batch: usize,
    total_tokens: f64,
) -> f64 {
    let global_batch = 512usize;
    let tokens_per_step = (global_batch * shape.seq) as f64;
    let steps = total_tokens / tokens_per_step;
    steps * train_step_time(device, shape, policy, micro_batch, global_batch) / 3600.0
}

/// Fraction of system peak FLOP/s sustained during training (the §6.1
/// "21% to 48%" observation for Megatron).
pub fn model_flops_utilization(
    device: &DeviceSpec,
    shape: &ModelShape,
    policy: ExecutionPolicy,
    micro_batch: usize,
    flops_per_sequence: f64,
) -> f64 {
    let global_batch = 512usize;
    let step = train_step_time(device, shape, policy, micro_batch, global_batch);
    let useful = flops_per_sequence * global_batch as f64;
    useful / (step * device.system_peak_flops())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::{moe_variant, paper_shape};

    fn dev() -> DeviceSpec {
        DeviceSpec::a100_sxm4_80gb()
    }

    fn dense_flops(shape: &ModelShape) -> f64 {
        let s = shape.seq as f64;
        let l = shape.layers as f64;
        let h = shape.hidden as f64;
        let v = shape.vocab as f64;
        72.0 * s * l * h * h * (1.0 + s / (6.0 * h)) + 6.0 * s * h * v
    }

    #[test]
    fn megatron_utilization_is_in_the_reported_band() {
        // §6.1: 21%..48% of the 2.5 PFLOP system, increasing with size.
        let mbs = [
            ("XS", 64),
            ("Small", 32),
            ("Medium", 16),
            ("Large", 16),
            ("XL", 8),
        ];
        let mut last = 0.0;
        for (name, mb) in mbs {
            let shape = paper_shape(name).unwrap();
            let mfu = model_flops_utilization(
                &dev(),
                &shape,
                ExecutionPolicy::DenseMegatron,
                mb,
                dense_flops(&shape),
            );
            assert!(
                (0.15..0.60).contains(&mfu),
                "Transformer-{name}: MFU {mfu:.3} out of band"
            );
            assert!(mfu >= last * 0.9, "MFU should broadly increase with size");
            last = mfu;
        }
    }

    #[test]
    fn megablocks_beats_tutel_and_gap_grows_with_size() {
        // Figure 7's headline: 1.38x / 2.0x / 4.35x for XS / Small /
        // Medium. The model should land in those neighborhoods.
        let cases = [
            ("XS", 64usize, 32usize, 1.1, 1.8),
            ("Small", 32, 8, 1.5, 2.7),
            ("Medium", 8, 1, 3.0, 5.8),
        ];
        let mut last = 0.0;
        for (name, mb_mega, mb_tutel, lo, hi) in cases {
            let shape = moe_variant(paper_shape(name).unwrap());
            let t_mega = train_step_time(&dev(), &shape, ExecutionPolicy::MegaBlocks, mb_mega, 512);
            let t_tutel = train_step_time(
                &dev(),
                &shape,
                ExecutionPolicy::Tutel {
                    expansion: tutel_dynamic_avg_expansion(name),
                },
                mb_tutel,
                512,
            );
            let speedup = t_tutel / t_mega;
            assert!(
                (lo..hi).contains(&speedup),
                "dMoE-{name}: speedup {speedup:.2} outside [{lo}, {hi})"
            );
            assert!(speedup > last, "speedup should grow with model size");
            last = speedup;
        }
    }

    #[test]
    fn dmoe_is_faster_than_dense_for_equal_quality_flops() {
        // The dMoE costs more per step than its dense base (more FLOPs in
        // expert layers are *not* charged — same activated FLOPs — but
        // permutation/a2a overheads exist), yet less than ~1.6x.
        let name = "Small";
        let dense_shape = paper_shape(name).unwrap();
        let moe_shape = moe_variant(dense_shape.clone());
        let t_dense = train_step_time(
            &dev(),
            &dense_shape,
            ExecutionPolicy::DenseMegatron,
            32,
            512,
        );
        let t_moe = train_step_time(&dev(), &moe_shape, ExecutionPolicy::MegaBlocks, 32, 512);
        assert!(t_moe > t_dense * 0.95, "dense {t_dense}, dmoe {t_moe}");
        assert!(t_moe < t_dense * 1.8, "dense {t_dense}, dmoe {t_moe}");
    }

    #[test]
    fn smaller_micro_batches_are_less_efficient() {
        let shape = moe_variant(paper_shape("Small").unwrap());
        let t8 = train_step_time(&dev(), &shape, ExecutionPolicy::MegaBlocks, 8, 512);
        let t32 = train_step_time(&dev(), &shape, ExecutionPolicy::MegaBlocks, 32, 512);
        assert!(t8 > t32, "8: {t8}, 32: {t32}");
    }

    #[test]
    fn end_to_end_hours_scales_with_tokens() {
        let shape = paper_shape("XS").unwrap();
        let h10 = end_to_end_hours(&dev(), &shape, ExecutionPolicy::DenseMegatron, 64, 10e9);
        let h20 = end_to_end_hours(&dev(), &shape, ExecutionPolicy::DenseMegatron, 64, 20e9);
        assert!((h20 / h10 - 2.0).abs() < 1e-6);
        assert!(h10 > 0.5 && h10 < 200.0, "XS 10B-token train time {h10} h");
    }
}

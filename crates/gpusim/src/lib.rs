//! Analytic A100 performance and memory model for MegaBlocks-RS.
//!
//! The paper's evaluation runs on NVIDIA A100 GPUs; a pure-Rust, CPU-only
//! reproduction cannot execute those kernels, so throughput figures
//! (Figures 4 and 9), memory-derived micro-batch limits (Table 3) and
//! end-to-end step times (Figures 7 and 8) are regenerated from an
//! analytic device model instead (see DESIGN.md, "Hardware / data
//! substitutions").
//!
//! The model is a tile-level roofline:
//!
//! * GEMMs execute as grids of `tm x tn` output tiles over
//!   [`DeviceSpec::sm_count`] SMs in waves ([`dense`]). Per-tile pipeline
//!   efficiency grows with tile size; tiles past 128x128 pay a
//!   register/shared-memory pressure penalty. Both wave quantization and
//!   padding waste fall out of the grid arithmetic. This reproduces the
//!   CUTLASS tile study of Figure 4 — including its conclusion that
//!   128x128 is the sweet spot.
//! * Block-sparse kernels ([`sparse`]) run the same tile model over the
//!   nonzero blocks of a block-diagonal MoE topology, plus the metadata
//!   costs the paper describes: O(1) coordinate loads with the hybrid
//!   blocked-CSR-COO encoding versus a dense grid of mostly-idle
//!   threadblocks (the Gale-2020 alternative, §5.1.3), and an L2-locality
//!   penalty for iterating through transpose indices (§5.1.4, the DS^TD
//!   effect visible in Figure 9).
//! * Training memory ([`memory`]) follows the Megatron mixed-precision
//!   accounting (fp16 weights/grads + fp32 master/Adam moments) and the
//!   activation formulas of Korthikanti et al. (2022), with the capacity
//!   padding of token-dropping MoEs inflating the MLP activations — the
//!   mechanism that forces Tutel to smaller micro-batches in Table 3.
//! * End-to-end step time ([`timeline`]) composes per-layer GEMM times,
//!   permutation/all-to-all traffic and gradient accumulation into the
//!   training-time axis of Figures 7 and 8.

#![deny(missing_docs)]

pub mod dense;
mod device;
pub mod memory;
pub mod sparse;
pub mod tile;
pub mod timeline;

pub use device::DeviceSpec;
pub use tile::TileShape;

//! Dense GEMM timing: the cuBLAS/CUTLASS stand-in.
//!
//! `gemm_time` is the workhorse of the whole performance model: block
//! tiles are scheduled over SMs in waves, the roofline binds compute
//! against HBM traffic, and kernel launch latency is added once. Figure 4
//! is `gemm_throughput_tflops` swept over [`TileShape::CUTLASS_SWEEP`].

use crate::{DeviceSpec, TileShape};

/// Bytes per element at mixed precision (FP16 storage).
pub const ELEM_BYTES: f64 = 2.0;

/// Time in seconds for a single `m x n x k` GEMM using `tile`, including
/// one kernel launch.
pub fn gemm_time(device: &DeviceSpec, tile: TileShape, m: usize, n: usize, k: usize) -> f64 {
    gemm_time_batched(device, tile, m, n, k, 1)
}

/// Time for a batch of identical GEMMs launched as one kernel (cuBLAS
/// batched / CUTLASS grouped style): the tile grids concatenate, so waves
/// pack across batch entries.
pub fn gemm_time_batched(
    device: &DeviceSpec,
    tile: TileShape,
    m: usize,
    n: usize,
    k: usize,
    batch: usize,
) -> f64 {
    if m == 0 || n == 0 || k == 0 || batch == 0 {
        return device.kernel_launch;
    }
    let tiles = tile.tiles_m(m) * tile.tiles_n(n) * batch;
    let waves = tiles.div_ceil(device.sm_count);
    // A tile multiplies the full (padded) K dimension.
    let tile_flops = 2.0 * tile.area() as f64 * k as f64;
    let tile_time = tile_flops / (device.sm_peak_flops() * tile.efficiency());
    let compute = waves as f64 * tile_time;

    // Ideal HBM traffic: operands once, output once (good L2 reuse).
    let traffic = ELEM_BYTES * batch as f64 * (m * k + k * n + m * n) as f64;
    let mem = traffic / device.mem_bandwidth;

    compute.max(mem) + device.kernel_launch
}

/// Realized throughput of a square-ish GEMM in TFLOP/s (useful FLOPs over
/// modeled time) — the y-axis of Figure 4.
pub fn gemm_throughput_tflops(
    device: &DeviceSpec,
    tile: TileShape,
    m: usize,
    n: usize,
    k: usize,
) -> f64 {
    let flops = 2.0 * m as f64 * n as f64 * k as f64;
    flops / gemm_time(device, tile, m, n, k) / 1e12
}

/// Time with the best tile shape from the CUTLASS sweep — how cuBLAS's
/// heuristic behaves for well-shaped problems.
pub fn best_gemm_time(device: &DeviceSpec, m: usize, n: usize, k: usize) -> f64 {
    TileShape::CUTLASS_SWEEP
        .iter()
        .map(|&t| gemm_time(device, t, m, n, k))
        .fold(f64::INFINITY, f64::min)
}

/// cuBLAS batched-GEMM time for the MoE baseline (Figure 3A): `batch`
/// experts, each `m x n x k`, launched together. Includes the per-entry
/// pointer-array indirection cuBLAS batched interfaces pay.
pub fn cublas_batched_time(device: &DeviceSpec, m: usize, n: usize, k: usize, batch: usize) -> f64 {
    let base = gemm_time_batched(device, TileShape::PAPER, m, n, k, batch);
    // Pointer/stride setup per batch entry (measured microseconds-scale
    // for large batches; tiny but nonzero).
    base + batch as f64 * 2e-8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::a100_sxm4_80gb()
    }

    #[test]
    fn large_gemm_reaches_high_fraction_of_peak() {
        // 128x128 tiles on a 8192^3 problem should land in the ~200-280
        // TFLOP/s band a real A100 shows.
        let t = gemm_throughput_tflops(&dev(), TileShape::PAPER, 8192, 8192, 8192);
        assert!((185.0..290.0).contains(&t), "throughput {t}");
    }

    #[test]
    fn paper_tile_is_on_par_or_better() {
        // Figure 4's claim: 128x128 performs consistently on-par or better.
        // Wave quantization produces a sawtooth where another tile can edge
        // ahead at individual sizes (visible in the paper's plot too), so
        // the check is: within 12% of the best everywhere, and the best on
        // geometric mean across the sweep.
        let sizes = [512usize, 1024, 2048, 4096, 8192, 16384];
        let mut geomean = std::collections::HashMap::new();
        for &size in &sizes {
            let paper = gemm_throughput_tflops(&dev(), TileShape::PAPER, size, size, size);
            for tile in TileShape::CUTLASS_SWEEP {
                let other = gemm_throughput_tflops(&dev(), tile, size, size, size);
                if size >= 1024 {
                    assert!(
                        paper >= other * 0.88,
                        "at {size}: 128x128 = {paper:.1} TF but {tile} = {other:.1} TF"
                    );
                }
                *geomean.entry(tile).or_insert(0.0f64) += other.ln();
            }
        }
        let best = geomean
            .iter()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(t, _)| *t)
            .unwrap();
        assert_eq!(best, TileShape::PAPER, "geomean winner should be 128x128");
    }

    #[test]
    fn throughput_increases_with_size() {
        let d = dev();
        let small = gemm_throughput_tflops(&d, TileShape::PAPER, 512, 512, 512);
        let big = gemm_throughput_tflops(&d, TileShape::PAPER, 8192, 8192, 8192);
        assert!(big > small * 3.0, "small {small}, big {big}");
    }

    #[test]
    fn wave_quantization_hurts_odd_grids() {
        let d = dev();
        // 109 SMs' worth of tiles needs 2 waves; 108 needs 1.
        let just_fits = gemm_time(&d, TileShape::PAPER, 128 * 108, 128, 4096);
        let one_more = gemm_time(&d, TileShape::PAPER, 128 * 109, 128, 4096);
        assert!(one_more > just_fits * 1.5);
    }

    #[test]
    fn batched_packs_waves_across_entries() {
        let d = dev();
        // 64 experts x 1 tile each = 64 tiles -> 1 wave, almost as fast as
        // a single-tile gemm.
        let batched = gemm_time_batched(&d, TileShape::PAPER, 128, 128, 1024, 64);
        let single = gemm_time_batched(&d, TileShape::PAPER, 128, 128, 1024, 1);
        assert!(batched < single * 1.5);
    }

    #[test]
    fn tiny_problems_are_launch_dominated() {
        let d = dev();
        let t = gemm_time(&d, TileShape::PAPER, 64, 64, 64);
        assert!(t < 3.0 * d.kernel_launch && t >= d.kernel_launch);
    }

    #[test]
    fn memory_bound_regime_respects_bandwidth() {
        let d = dev();
        // Skinny K: almost no compute, traffic dominates.
        let time = gemm_time(&d, TileShape::PAPER, 8192, 8192, 8) - d.kernel_launch;
        let traffic = ELEM_BYTES * (8192.0 * 8.0 * 2.0 + 8192.0 * 8192.0);
        assert!(time >= traffic / d.mem_bandwidth * 0.99);
    }
}

//! Fault-injection and fault-tolerance substrate for MegaBlocks-RS.
//!
//! The paper's dropless formulation removes one whole class of silent
//! failures (token dropping); this crate is the workspace's answer to the
//! *loud* ones — worker panics, NaN-poisoned kernels, failed
//! expert-parallel shards, torn checkpoint writes. It owns the pieces the
//! recovery paths in `exec`, `core` and `transformer` share:
//!
//! * **A deterministic fault-injection layer** ([`FaultPlan`], [`sites`])
//!   behind the `chaos` cargo feature. A plan is seeded and installed
//!   process-wide; registered injection sites ([`Site`]) query it through
//!   hooks ([`maybe_panic`], [`maybe_poison`], [`should_fail`],
//!   [`inject_delay`], [`delay_requested`], [`maybe_io_error`]) that
//!   compile to inlined no-ops
//!   when the feature is off — production builds carry no chaos machinery.
//! * **CRC-checked, atomic file I/O** ([`crc32`], [`Crc32`],
//!   [`atomic_write`]) — the write-temp + fsync + rename discipline the
//!   v2 checkpoint format relies on, so a crash or injected I/O error can
//!   tear at most a temp file, never a committed checkpoint.
//! * **Bounded exponential-backoff retry** ([`RetryPolicy`],
//!   [`run_with_retry`]) shared by the checkpoint writer and the
//!   fault-tolerant trainer loop.
//!
//! Every injection and every recovery emits `resilience.*` telemetry:
//! `resilience.injected.<site>` when a fault fires,
//! `resilience.detected.<site>` when a recovery path notices one, and
//! `resilience.recovered.<site>` when it heals it. The audit lint
//! (rule 6) pins the site catalogue to this naming scheme.

#![deny(missing_docs)]

mod crc;
mod io;
mod plan;
mod retry;
pub mod sites;

pub use crc::{crc32, Crc32};
pub use io::atomic_write;
pub use plan::{
    clear_plan, delay_requested, inject_delay, install_plan, maybe_io_error, maybe_panic,
    maybe_poison, plan_installed, report, should_fail, FaultPlan, FaultReport, SiteReport,
    INJECTED_PANIC_PREFIX,
};
pub use retry::{run_with_retry, RetryPolicy};
pub use sites::Site;

use megablocks_telemetry as telemetry;

/// Whether the fault-injection hooks are compiled in (`chaos` feature).
pub const fn chaos_enabled() -> bool {
    cfg!(feature = "chaos")
}

/// Records that a recovery path *noticed* a fault at `site` (its own or
/// an injected one). Always compiled: detection happens on the recovery
/// path, never in a kernel hot loop.
pub fn record_detected(site: &Site) {
    telemetry::counter(site.detected).inc();
    telemetry::trace_instant(site.detected);
}

/// Records that a recovery path *healed* a fault at `site` — a retried
/// step succeeded, a shard was re-run, a checkpoint write went through on
/// a later attempt.
pub fn record_recovered(site: &Site) {
    telemetry::counter(site.recovered).inc();
    telemetry::trace_instant(site.recovered);
}

//! Atomic file writes: the write-temp + fsync + rename discipline.
//!
//! A checkpoint either commits whole or not at all. [`atomic_write`]
//! stages the bytes in a sibling temp file, fsyncs it, then renames it
//! over the destination — on POSIX filesystems the rename is atomic, so
//! a crash (or an injected fault) at any point leaves either the old
//! checkpoint or the new one, never a torn hybrid. The
//! [`crate::sites::CHECKPOINT_IO`] injection site fires at each stage
//! under the `chaos` feature.

use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

use megablocks_telemetry as telemetry;

use crate::plan::maybe_io_error;
use crate::sites;

/// Writes `bytes` to `path` atomically (temp file + fsync + rename).
///
/// # Errors
///
/// Returns any underlying I/O error (or an injected one under the
/// `chaos` feature). On error the temp file is removed best-effort and
/// `path` is left exactly as it was.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let _span = telemetry::span("resilience.atomic_write");
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = Path::new(&tmp);

    let result = (|| {
        maybe_io_error(&sites::CHECKPOINT_IO)?;
        let mut f = File::create(tmp)?;
        f.write_all(bytes)?;
        maybe_io_error(&sites::CHECKPOINT_IO)?;
        f.sync_all()?;
        drop(f);
        maybe_io_error(&sites::CHECKPOINT_IO)?;
        fs::rename(tmp, path)
    })();

    if result.is_err() {
        let _ = fs::remove_file(tmp);
    } else {
        telemetry::counter("resilience.checkpoint.committed").inc();
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("megablocks-resilience-io");
        fs::create_dir_all(&dir).expect("scratch dir");
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn write_then_read_back() {
        let path = scratch("roundtrip.bin");
        atomic_write(&path, b"hello checkpoint").expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"hello checkpoint");
        // Overwrite in place: the rename replaces the old file.
        atomic_write(&path, b"v2").expect("rewrite");
        assert_eq!(fs::read(&path).expect("read"), b"v2");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn no_temp_file_survives_a_successful_write() {
        let path = scratch("clean.bin");
        atomic_write(&path, &[1, 2, 3]).expect("write");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!Path::new(&tmp).exists(), "temp file leaked");
        let _ = fs::remove_file(&path);
    }

    #[cfg(feature = "chaos")]
    #[test]
    fn injected_io_error_never_tears_the_destination() {
        use crate::plan::{clear_plan, install_plan, FaultPlan};
        let path = scratch("torn.bin");
        atomic_write(&path, b"committed v1").expect("seed write");
        // One failure per stage: write 1 dies before create (1 call
        // consumed), write 2 before fsync (2 calls), write 3 before
        // rename (3 calls).
        install_plan(FaultPlan::seeded(1).at_calls(&sites::CHECKPOINT_IO, &[0, 2, 5]));
        for _ in 0..3 {
            atomic_write(&path, b"should never land").expect_err("injected failure");
            assert_eq!(
                fs::read(&path).expect("read"),
                b"committed v1",
                "destination torn by a failed write"
            );
        }
        clear_plan();
        let _ = fs::remove_file(&path);
    }
}

//! Deterministic, seeded fault plans and the injection hooks sites query.
//!
//! A [`FaultPlan`] schedules faults per [`Site`] two ways, composable:
//!
//! * **Explicit call indices** ([`FaultPlan::at_calls`]) — fire on
//!   exactly the n-th, m-th, … invocation of the site (0-based). Each
//!   site keeps an atomic call counter, so the *count* of firings is
//!   deterministic regardless of thread interleaving.
//! * **Seeded rate with a budget** ([`FaultPlan::with_rate`]) — each call
//!   fires with probability `rate`, decided by a SplitMix64 hash of
//!   `(seed, site, call index)`, capped at `budget` total firings so a
//!   chaos run always drains its faults and can finish.
//!
//! With the `chaos` feature off every hook in this module is an inlined
//! constant no-op: [`install_plan`] discards the plan, the queries return
//! "no fault", and no global state exists.

use crate::sites::Site;

/// How one site's faults are scheduled.
#[derive(Debug, Clone, Default, PartialEq)]
struct Schedule {
    /// Explicit 0-based call indices that fire.
    at_calls: Vec<u64>,
    /// Per-call firing probability in `[0, 1]`.
    rate: f64,
    /// Maximum rate-driven firings (explicit indices are exempt).
    budget: u64,
}

/// A deterministic, seeded fault-injection plan.
///
/// Build one with [`FaultPlan::seeded`], add per-site schedules, then
/// [`install_plan`] it process-wide. Installing replaces any previous
/// plan and resets all call counters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    /// Milliseconds an injected [`crate::sites::EP_SHARD_DELAY`] fault
    /// sleeps for.
    delay_ms: u64,
    schedules: Vec<(&'static str, Schedule)>,
}

impl FaultPlan {
    /// Creates an empty plan with the given seed (drives rate decisions).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            delay_ms: 20,
            schedules: Vec::new(),
        }
    }

    /// Fires `site` on exactly the listed 0-based call indices.
    #[must_use]
    pub fn at_calls(mut self, site: &Site, calls: &[u64]) -> Self {
        let sched = self.schedule_mut(site);
        sched.at_calls.extend_from_slice(calls);
        sched.at_calls.sort_unstable();
        sched.at_calls.dedup();
        self
    }

    /// Fires `site` with probability `rate` per call, at most `budget`
    /// times over the plan's lifetime.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    #[must_use]
    pub fn with_rate(mut self, site: &Site, rate: f64, budget: u64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} outside [0, 1]");
        let sched = self.schedule_mut(site);
        sched.rate = rate;
        sched.budget = budget;
        self
    }

    /// Sets the sleep duration of injected straggler delays
    /// (default 20 ms).
    #[must_use]
    pub fn delay_ms(mut self, ms: u64) -> Self {
        self.delay_ms = ms;
        self
    }

    fn schedule_mut(&mut self, site: &Site) -> &mut Schedule {
        if let Some(i) = self.schedules.iter().position(|(n, _)| *n == site.name) {
            return &mut self.schedules[i].1;
        }
        self.schedules.push((site.name, Schedule::default()));
        &mut self.schedules.last_mut().expect("just pushed").1
    }
}

/// Injection counts for one site, from [`report`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteReport {
    /// The site's registered name.
    pub site: &'static str,
    /// Calls the site made into the chaos layer.
    pub calls: u64,
    /// Faults actually injected.
    pub injected: u64,
}

/// Snapshot of the installed plan's activity, from [`report`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Per-site activity, in plan order.
    pub sites: Vec<SiteReport>,
}

impl FaultReport {
    /// Faults injected at `site` so far (0 if the site is unscheduled or
    /// no plan is installed).
    pub fn injected_at(&self, site: &Site) -> u64 {
        self.sites
            .iter()
            .find(|s| s.site == site.name)
            .map_or(0, |s| s.injected)
    }
}

#[cfg(feature = "chaos")]
mod active {
    use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
    use std::sync::{Arc, RwLock};

    use megablocks_telemetry as telemetry;

    use super::{FaultPlan, FaultReport, Schedule, SiteReport};
    use crate::sites::Site;

    struct ActiveSite {
        name: &'static str,
        injected_counter: &'static str,
        sched: Schedule,
        calls: AtomicU64,
        fired: AtomicU64,
        budget_left: AtomicU64,
    }

    struct ActivePlan {
        seed: u64,
        delay_ms: u64,
        sites: Vec<ActiveSite>,
    }

    static PLAN: RwLock<Option<Arc<ActivePlan>>> = RwLock::new(None);

    fn current() -> Option<Arc<ActivePlan>> {
        PLAN.read().unwrap_or_else(|e| e.into_inner()).clone()
    }

    pub fn install(plan: FaultPlan) {
        let sites = plan
            .schedules
            .iter()
            .map(|(name, sched)| ActiveSite {
                name,
                injected_counter: crate::sites::ALL
                    .iter()
                    .find(|s| s.name == *name)
                    .map(|s| s.injected)
                    .unwrap_or("resilience.injected.unknown"),
                sched: sched.clone(),
                calls: AtomicU64::new(0),
                fired: AtomicU64::new(0),
                budget_left: AtomicU64::new(sched.budget),
            })
            .collect();
        let active = ActivePlan {
            seed: plan.seed,
            delay_ms: plan.delay_ms,
            sites,
        };
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(active));
    }

    pub fn clear() {
        *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
    }

    pub fn installed() -> bool {
        current().is_some()
    }

    pub fn report() -> FaultReport {
        let Some(plan) = current() else {
            return FaultReport::default();
        };
        FaultReport {
            sites: plan
                .sites
                .iter()
                .map(|s| SiteReport {
                    site: s.name,
                    calls: s.calls.load(Relaxed),
                    injected: s.fired.load(Relaxed),
                })
                .collect(),
        }
    }

    /// SplitMix64 over `(seed, site hash, call index)` — the whole
    /// determinism story of rate-scheduled faults.
    fn decision_hash(seed: u64, site: &str, call: u64) -> u64 {
        let mut z = seed ^ call.wrapping_mul(0x9E3779B97F4A7C15);
        for b in site.bytes() {
            z = z.wrapping_add(u64::from(b)).wrapping_mul(0x100000001B3);
        }
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// One call into the chaos layer from `site`: advances the site's
    /// call counter and decides whether a fault fires here.
    pub fn fires(site: &Site) -> bool {
        let Some(plan) = current() else {
            return false;
        };
        let Some(s) = plan.sites.iter().find(|s| s.name == site.name) else {
            return false;
        };
        let call = s.calls.fetch_add(1, Relaxed);
        let mut fire = s.sched.at_calls.binary_search(&call).is_ok();
        if !fire && s.sched.rate > 0.0 {
            let u = decision_hash(plan.seed, s.name, call) as f64 / u64::MAX as f64;
            if u < s.sched.rate {
                // Consume budget; back out on exhaustion.
                let mut left = s.budget_left.load(Relaxed);
                while left > 0 {
                    match s
                        .budget_left
                        .compare_exchange(left, left - 1, Relaxed, Relaxed)
                    {
                        Ok(_) => {
                            fire = true;
                            break;
                        }
                        Err(now) => left = now,
                    }
                }
            }
        }
        if fire {
            s.fired.fetch_add(1, Relaxed);
            telemetry::counter(s.injected_counter).inc();
            telemetry::trace_instant(s.injected_counter);
        }
        fire
    }

    pub fn delay_ms() -> u64 {
        current().map_or(0, |p| p.delay_ms)
    }
}

/// Installs `plan` process-wide, replacing any previous plan and
/// resetting all call counters. A no-op without the `chaos` feature.
pub fn install_plan(plan: FaultPlan) {
    #[cfg(feature = "chaos")]
    active::install(plan);
    #[cfg(not(feature = "chaos"))]
    let _ = plan;
}

/// Removes the installed plan (all sites go quiet). A no-op without the
/// `chaos` feature.
pub fn clear_plan() {
    #[cfg(feature = "chaos")]
    active::clear();
}

/// Whether a plan is currently installed (always `false` without the
/// `chaos` feature).
pub fn plan_installed() -> bool {
    #[cfg(feature = "chaos")]
    return active::installed();
    #[cfg(not(feature = "chaos"))]
    false
}

/// Injection activity of the installed plan (empty without the `chaos`
/// feature or when no plan is installed).
pub fn report() -> FaultReport {
    #[cfg(feature = "chaos")]
    return active::report();
    #[cfg(not(feature = "chaos"))]
    FaultReport::default()
}

/// Payload prefix of every injected panic, so recovery paths (and tests)
/// can tell injected faults from genuine ones.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// Worker-panic hook: panics with a recognizable payload if the plan
/// fires at `site`. Inlines to nothing without the `chaos` feature.
#[inline]
pub fn maybe_panic(site: &Site) {
    #[cfg(feature = "chaos")]
    if active::fires(site) {
        panic!("{} {}", INJECTED_PANIC_PREFIX, site.name);
    }
    #[cfg(not(feature = "chaos"))]
    let _ = site;
}

/// NaN-poisoning hook: overwrites one element of `data` with NaN if the
/// plan fires at `site`. Inlines to nothing without the `chaos` feature.
#[inline]
pub fn maybe_poison(site: &Site, data: &mut [f32]) {
    #[cfg(feature = "chaos")]
    if active::fires(site) {
        if let Some(x) = data.first_mut() {
            *x = f32::NAN;
        }
    }
    #[cfg(not(feature = "chaos"))]
    let _ = (site, data);
}

/// Structured-failure hook (EP shards): `true` if the plan fires at
/// `site`. Inlines to `false` without the `chaos` feature.
#[inline]
pub fn should_fail(site: &Site) -> bool {
    #[cfg(feature = "chaos")]
    return active::fires(site);
    #[cfg(not(feature = "chaos"))]
    {
        let _ = site;
        false
    }
}

/// Straggler hook: sleeps for the plan's configured delay if the plan
/// fires at `site`, returning the milliseconds slept. Inlines to `0`
/// without the `chaos` feature.
#[inline]
pub fn inject_delay(site: &Site) -> u64 {
    #[cfg(feature = "chaos")]
    if active::fires(site) {
        let ms = active::delay_ms();
        std::thread::sleep(std::time::Duration::from_millis(ms));
        return ms;
    }
    #[cfg(not(feature = "chaos"))]
    let _ = site;
    0
}

/// Cooperative-stall hook: if the plan fires at `site`, returns the
/// plan's configured delay in milliseconds *without sleeping* — the
/// caller parks on its own terms (typically in short slices, polling a
/// cancellation token between them), so an injected stall still unwinds
/// promptly once a watchdog cancels it. Inlines to `0` without the
/// `chaos` feature.
#[inline]
pub fn delay_requested(site: &Site) -> u64 {
    #[cfg(feature = "chaos")]
    if active::fires(site) {
        return active::delay_ms();
    }
    #[cfg(not(feature = "chaos"))]
    let _ = site;
    0
}

/// Checkpoint-I/O hook: returns an injected `io::Error` if the plan fires
/// at `site`. Inlines to `Ok(())` without the `chaos` feature.
#[inline]
pub fn maybe_io_error(site: &Site) -> std::io::Result<()> {
    #[cfg(feature = "chaos")]
    if active::fires(site) {
        return Err(std::io::Error::other(format!(
            "{} {}",
            INJECTED_PANIC_PREFIX, site.name
        )));
    }
    #[cfg(not(feature = "chaos"))]
    let _ = site;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sites;

    #[test]
    fn builder_dedups_and_sorts_call_indices() {
        let plan = FaultPlan::seeded(1)
            .at_calls(&sites::EXEC_WORKER_PANIC, &[5, 1])
            .at_calls(&sites::EXEC_WORKER_PANIC, &[1, 3]);
        assert_eq!(plan.schedules.len(), 1);
        assert_eq!(plan.schedules[0].1.at_calls, vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rate_must_be_a_probability() {
        let _ = FaultPlan::seeded(0).with_rate(&sites::CHECKPOINT_IO, 1.5, 3);
    }

    #[cfg(not(feature = "chaos"))]
    #[test]
    fn hooks_are_noops_without_chaos() {
        install_plan(FaultPlan::seeded(7).at_calls(&sites::KERNEL_NAN_POISON, &[0]));
        assert!(!plan_installed());
        let mut data = [1.0f32];
        maybe_poison(&sites::KERNEL_NAN_POISON, &mut data);
        assert_eq!(data[0], 1.0);
        assert!(!should_fail(&sites::EP_SHARD_FAIL));
        assert_eq!(inject_delay(&sites::EP_SHARD_DELAY), 0);
        assert!(maybe_io_error(&sites::CHECKPOINT_IO).is_ok());
        maybe_panic(&sites::EXEC_WORKER_PANIC); // must not panic
        assert!(report().sites.is_empty());
    }

    #[cfg(feature = "chaos")]
    mod chaos {
        use super::super::*;
        use crate::sites;

        // The plan is process-global, so chaos tests run serially under a
        // lock to keep installs from racing each other.
        static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

        #[test]
        fn explicit_calls_fire_exactly_once_each() {
            let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            install_plan(FaultPlan::seeded(3).at_calls(&sites::EP_SHARD_FAIL, &[1, 3]));
            let fired: Vec<bool> = (0..6).map(|_| should_fail(&sites::EP_SHARD_FAIL)).collect();
            assert_eq!(fired, vec![false, true, false, true, false, false]);
            assert_eq!(report().injected_at(&sites::EP_SHARD_FAIL), 2);
            clear_plan();
        }

        #[test]
        fn rate_respects_budget_and_is_seed_deterministic() {
            let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            let run = |seed| {
                install_plan(FaultPlan::seeded(seed).with_rate(&sites::CHECKPOINT_IO, 0.5, 4));
                let fired: Vec<bool> = (0..64)
                    .map(|_| maybe_io_error(&sites::CHECKPOINT_IO).is_err())
                    .collect();
                clear_plan();
                fired
            };
            let a = run(11);
            let b = run(11);
            assert_eq!(a, b, "same seed, same schedule");
            assert_eq!(a.iter().filter(|&&f| f).count(), 4, "budget caps firings");
        }

        #[test]
        fn unscheduled_sites_stay_quiet() {
            let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            install_plan(FaultPlan::seeded(5).at_calls(&sites::EP_SHARD_FAIL, &[0]));
            maybe_panic(&sites::EXEC_WORKER_PANIC);
            assert_eq!(inject_delay(&sites::EP_SHARD_DELAY), 0);
            clear_plan();
        }

        #[test]
        fn injected_panics_carry_the_marker_payload() {
            let _guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
            install_plan(FaultPlan::seeded(9).at_calls(&sites::EXEC_WORKER_PANIC, &[0]));
            let err = std::panic::catch_unwind(|| maybe_panic(&sites::EXEC_WORKER_PANIC))
                .expect_err("scheduled call must panic");
            let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
            assert!(msg.starts_with(INJECTED_PANIC_PREFIX), "{msg}");
            clear_plan();
        }
    }
}

//! Bounded exponential-backoff retry, shared by the checkpoint writer
//! and the fault-tolerant trainer loop.

use std::time::Duration;

use megablocks_telemetry as telemetry;

/// Retry policy: how many times to retry and how long to back off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_delay * 2^k`, capped at
    /// [`RetryPolicy::max_delay`].
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep (before jitter).
    pub max_delay: Duration,
    /// Jitter amplitude as a percent of the computed backoff, in
    /// `0..=100`: retry `k` sleeps `backoff(k)` stretched by up to
    /// ±`jitter_pct`%, which desynchronizes retry storms when many
    /// shards back off from the same fault. The offset is derived from a
    /// hash of the op name and attempt index, so runs stay reproducible.
    pub jitter_pct: u32,
}

impl RetryPolicy {
    /// A small default: 3 retries, 10 ms base, 500 ms cap, 20% jitter.
    pub fn default_transient() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_pct: 20,
        }
    }

    /// `max_retries` retries with no sleeping — for tests and for faults
    /// where waiting buys nothing (deterministic in-process retries).
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_pct: 0,
        }
    }

    /// The same policy with a different jitter amplitude (clamped to
    /// `0..=100`).
    pub fn with_jitter(mut self, jitter_pct: u32) -> Self {
        self.jitter_pct = jitter_pct.min(100);
        self
    }

    /// The backoff before the `attempt`-th retry (0-based, jitter-free):
    /// exponential in `attempt` and capped at [`RetryPolicy::max_delay`].
    ///
    /// Every step saturates instead of wrapping: `2^attempt` exceeds
    /// `u32` past attempt 31 (`checked_shl` → the all-ones factor) and
    /// `base_delay * factor` can exceed `Duration` (`checked_mul` → the
    /// cap directly), so arbitrarily high attempt counts pin to
    /// `max_delay` rather than overflowing back to tiny sleeps.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |d| d.min(self.max_delay))
    }

    /// The backoff before the `attempt`-th retry with the policy's
    /// deterministic jitter applied: `backoff(attempt)` scaled by a
    /// hash-derived factor in `[1 - jitter_pct%, 1 + jitter_pct%]`. The
    /// same `(salt, attempt)` pair always yields the same sleep.
    pub fn backoff_jittered(&self, attempt: u32, salt: u64) -> Duration {
        let base = self.backoff(attempt);
        let pct = u64::from(self.jitter_pct.min(100));
        if pct == 0 || base.is_zero() {
            return base;
        }
        // Offset in [-pct, +pct], uniform over 2*pct + 1 integer points.
        let h = splitmix(salt ^ (u64::from(attempt) << 32));
        let offset = (h % (2 * pct + 1)) as i64 - pct as i64;
        let nanos = u64::try_from(base.as_nanos()).unwrap_or(u64::MAX);
        let delta = nanos / 100 * offset.unsigned_abs();
        let jittered = if offset < 0 {
            nanos.saturating_sub(delta)
        } else {
            nanos.saturating_add(delta)
        };
        Duration::from_nanos(jittered)
    }
}

/// SplitMix64 finalizer — the same mixer the fault plan uses for its
/// injection decisions, so jitter is deterministic across platforms.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// FNV-1a over the op name: the per-op jitter salt.
fn op_salt(op: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in op.bytes() {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `f` until it succeeds or the policy is exhausted, sleeping the
/// policy's (jittered) backoff between attempts. Each retry increments
/// the `resilience.retries` counter (labelled by `op`); a success after
/// at least one retry counts as a recovery on the caller's site.
///
/// # Errors
///
/// Returns the *last* error once `policy.max_retries` retries have been
/// spent.
pub fn run_with_retry<T, E>(
    policy: &RetryPolicy,
    op: &'static str,
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let salt = op_salt(op);
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < policy.max_retries => {
                telemetry::counter_with("resilience.retries", op).inc();
                let delay = policy.backoff_jittered(attempt, salt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
                drop(e);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let out = run_with_retry(&RetryPolicy::immediate(5), "test", || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn gives_up_after_the_budget_with_the_last_error() {
        let mut calls = 0;
        let out: Result<(), String> = run_with_retry(&RetryPolicy::immediate(2), "test", || {
            calls += 1;
            Err(format!("attempt {calls}"))
        });
        assert_eq!(calls, 3, "1 attempt + 2 retries");
        assert_eq!(out.unwrap_err(), "attempt 3");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(60),
            jitter_pct: 0,
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(60), "capped");
        assert_eq!(p.backoff(31), Duration::from_millis(60), "huge attempt");
        assert_eq!(p.backoff(32), Duration::from_millis(60), "shift overflow");
    }

    #[test]
    fn backoff_saturates_at_the_cap_for_every_high_attempt() {
        // The saturation pin: past the overflow points (factor overflow
        // at 32, Duration overflow well before that with a large base)
        // every attempt must return exactly the cap — never a wrapped,
        // tiny, or panicking value.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_delay: Duration::from_secs(u64::MAX / 4),
            max_delay: Duration::from_secs(3),
            jitter_pct: 0,
        };
        for attempt in [1, 2, 16, 31, 32, 33, 64, 1000, u32::MAX] {
            assert_eq!(
                p.backoff(attempt),
                Duration::from_secs(3),
                "attempt {attempt}"
            );
        }
    }

    #[test]
    fn jitter_stays_inside_its_bounds_and_is_deterministic() {
        let p = RetryPolicy {
            max_retries: 8,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(400),
            jitter_pct: 25,
        };
        let mut saw_nonzero_offset = false;
        for attempt in 0..64 {
            let base = p.backoff(attempt);
            let lo = base.mul_f64(0.75);
            let hi = base.mul_f64(1.25);
            for salt in [0u64, 1, 0xDEAD_BEEF, u64::MAX] {
                let j = p.backoff_jittered(attempt, salt);
                assert!(
                    j >= lo && j <= hi,
                    "attempt {attempt} salt {salt}: {j:?} outside [{lo:?}, {hi:?}]"
                );
                assert_eq!(
                    j,
                    p.backoff_jittered(attempt, salt),
                    "jitter must be deterministic"
                );
                saw_nonzero_offset |= j != base;
            }
        }
        assert!(
            saw_nonzero_offset,
            "jitter must actually perturb some sleeps"
        );
    }

    #[test]
    fn zero_jitter_and_zero_base_are_exact() {
        let p = RetryPolicy::immediate(3);
        assert_eq!(p.backoff_jittered(0, 42), Duration::ZERO);
        let q = RetryPolicy::default_transient().with_jitter(0);
        for attempt in 0..8 {
            assert_eq!(q.backoff_jittered(attempt, 7), q.backoff(attempt));
        }
    }
}

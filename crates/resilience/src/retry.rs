//! Bounded exponential-backoff retry, shared by the checkpoint writer
//! and the fault-tolerant trainer loop.

use std::time::Duration;

use megablocks_telemetry as telemetry;

/// Retry policy: how many times to retry and how long to back off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (total attempts = `max_retries + 1`).
    pub max_retries: u32,
    /// Backoff before retry `k` is `base_delay * 2^k`, capped at
    /// [`RetryPolicy::max_delay`].
    pub base_delay: Duration,
    /// Upper bound on a single backoff sleep.
    pub max_delay: Duration,
}

impl RetryPolicy {
    /// A small default: 3 retries, 10 ms base, 500 ms cap.
    pub fn default_transient() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
        }
    }

    /// `max_retries` retries with no sleeping — for tests and for faults
    /// where waiting buys nothing (deterministic in-process retries).
    pub fn immediate(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
        }
    }

    /// The backoff before the `attempt`-th retry (0-based), exponential
    /// in `attempt` and capped at [`RetryPolicy::max_delay`].
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_delay
            .checked_mul(factor)
            .map_or(self.max_delay, |d| d.min(self.max_delay))
    }
}

/// Runs `f` until it succeeds or the policy is exhausted, sleeping the
/// policy's backoff between attempts. Each retry increments the
/// `resilience.retries` counter (labelled by `op`); a success after at
/// least one retry counts as a recovery on the caller's site.
///
/// # Errors
///
/// Returns the *last* error once `policy.max_retries` retries have been
/// spent.
pub fn run_with_retry<T, E>(
    policy: &RetryPolicy,
    op: &'static str,
    mut f: impl FnMut() -> Result<T, E>,
) -> Result<T, E> {
    let mut attempt = 0u32;
    loop {
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if attempt < policy.max_retries => {
                telemetry::counter_with("resilience.retries", op).inc();
                let delay = policy.backoff(attempt);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
                attempt += 1;
                drop(e);
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_after_transient_failures() {
        let mut calls = 0;
        let out = run_with_retry(&RetryPolicy::immediate(5), "test", || {
            calls += 1;
            if calls < 3 {
                Err("transient")
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
    }

    #[test]
    fn gives_up_after_the_budget_with_the_last_error() {
        let mut calls = 0;
        let out: Result<(), String> = run_with_retry(&RetryPolicy::immediate(2), "test", || {
            calls += 1;
            Err(format!("attempt {calls}"))
        });
        assert_eq!(calls, 3, "1 attempt + 2 retries");
        assert_eq!(out.unwrap_err(), "attempt 3");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(60),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(10));
        assert_eq!(p.backoff(1), Duration::from_millis(20));
        assert_eq!(p.backoff(2), Duration::from_millis(40));
        assert_eq!(p.backoff(3), Duration::from_millis(60), "capped");
        assert_eq!(p.backoff(31), Duration::from_millis(60), "huge attempt");
        assert_eq!(p.backoff(32), Duration::from_millis(60), "shift overflow");
    }
}

//! The registered fault-injection sites.
//!
//! A [`Site`] names one place in the workspace where a [`FaultPlan`]
//! (see [`crate::FaultPlan`]) may inject a failure, together with the
//! three `resilience.*` telemetry counters its lifecycle reports to:
//! `injected` (the chaos layer fired), `detected` (a recovery path
//! noticed a fault — injected or genuine) and `recovered` (the recovery
//! path healed it).
//!
//! The audit lint's rule 6 parses this file: every site's counters must
//! be `resilience.injected.<name>` / `resilience.detected.<name>` /
//! `resilience.recovered.<name>`, and every site listed in [`ALL`] must
//! be referenced outside this file — a registered-but-unwired site is a
//! lint failure, not dead weight.

/// One registered fault-injection site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Site {
    /// Stable site name (`subsystem.fault`), the key a
    /// [`crate::FaultPlan`] schedules against.
    pub name: &'static str,
    /// Counter incremented when the chaos layer injects a fault here.
    pub injected: &'static str,
    /// Counter incremented when a recovery path detects a fault here.
    pub detected: &'static str,
    /// Counter incremented when a recovery path heals a fault here.
    pub recovered: &'static str,
}

/// Worker-panic injection inside the exec pool's launch path: a band task
/// panics before running its body, exercising the pool's park-and-reraise
/// path and the trainer's step retry.
pub const EXEC_WORKER_PANIC: Site = Site {
    name: "exec.worker_panic",
    injected: "resilience.injected.exec.worker_panic",
    detected: "resilience.detected.exec.worker_panic",
    recovered: "resilience.recovered.exec.worker_panic",
};

/// Kernel-output poisoning: a NaN is written into a dMoE forward output,
/// exercising non-finite loss/grad detection and step rollback.
pub const KERNEL_NAN_POISON: Site = Site {
    name: "kernel.nan_poison",
    injected: "resilience.injected.kernel.nan_poison",
    detected: "resilience.detected.kernel.nan_poison",
    recovered: "resilience.recovered.kernel.nan_poison",
};

/// Expert-parallel shard failure: one shard of the EP launch plan fails,
/// exercising per-shard retry and the single-device fallback.
pub const EP_SHARD_FAIL: Site = Site {
    name: "ep.shard_fail",
    injected: "resilience.injected.ep.shard_fail",
    detected: "resilience.detected.ep.shard_fail",
    recovered: "resilience.recovered.ep.shard_fail",
};

/// Expert-parallel straggler: one shard sleeps for the plan's configured
/// delay, exercising straggler detection around the shard launch.
pub const EP_SHARD_DELAY: Site = Site {
    name: "ep.shard_delay",
    injected: "resilience.injected.ep.shard_delay",
    detected: "resilience.detected.ep.shard_delay",
    recovered: "resilience.recovered.ep.shard_delay",
};

/// Checkpoint I/O failure: an [`crate::atomic_write`] step returns an
/// injected `io::Error`, exercising write retry/backoff and proving a
/// torn write never commits.
pub const CHECKPOINT_IO: Site = Site {
    name: "checkpoint.io",
    injected: "resilience.injected.checkpoint.io",
    detected: "resilience.detected.checkpoint.io",
    recovered: "resilience.recovered.checkpoint.io",
};

/// Band stall inside the exec launch path: one band of a launch plan
/// parks for the plan's configured delay (cooperatively, via
/// [`crate::delay_requested`]), exercising the stall watchdog's
/// cancel-and-unwind path.
pub const EXEC_BAND_STALL: Site = Site {
    name: "exec.band_stall",
    injected: "resilience.injected.exec.band_stall",
    detected: "resilience.detected.exec.band_stall",
    recovered: "resilience.recovered.exec.band_stall",
};

/// Pool-queue flood: a launch is treated as if the worker queue were at
/// its depth cap, exercising bounded admission — explicit shedding for
/// latency-bound launches, inline degradation for the rest.
pub const POOL_QUEUE_FLOOD: Site = Site {
    name: "pool.queue_flood",
    injected: "resilience.injected.pool.queue_flood",
    detected: "resilience.detected.pool.queue_flood",
    recovered: "resilience.recovered.pool.queue_flood",
};

/// Every registered site, in catalogue order.
pub const ALL: &[Site] = &[
    EXEC_WORKER_PANIC,
    KERNEL_NAN_POISON,
    EP_SHARD_FAIL,
    EP_SHARD_DELAY,
    CHECKPOINT_IO,
    EXEC_BAND_STALL,
    POOL_QUEUE_FLOOD,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_follow_the_lint_contract() {
        for site in ALL {
            assert_eq!(site.injected, format!("resilience.injected.{}", site.name));
            assert_eq!(site.detected, format!("resilience.detected.{}", site.name));
            assert_eq!(
                site.recovered,
                format!("resilience.recovered.{}", site.name)
            );
        }
    }

    #[test]
    fn site_names_are_unique() {
        let mut names: Vec<_> = ALL.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ALL.len());
    }
}

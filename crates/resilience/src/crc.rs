//! CRC32 (IEEE 802.3, the zlib/PNG polynomial) for checkpoint integrity.
//!
//! Dependency-free: the byte table is built at compile time. The v2
//! checkpoint format appends the CRC of everything before it, so a
//! flipped bit or truncated tail anywhere in the file fails validation
//! before a single parameter is touched.

/// Reflected polynomial of CRC-32/ISO-HDLC (zlib's `crc32`).
const POLY: u32 = 0xEDB8_8320;

const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// Streaming CRC32 state.
///
/// ```
/// use megablocks_resilience::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123");
/// crc.update(b"456789");
/// assert_eq!(crc.finalize(), 0xCBF43926); // the standard check value
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[usize::from((c as u8) ^ b)] ^ (c >> 8);
        }
        self.state = c;
    }

    /// The checksum of everything folded in so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot_at_any_split() {
        let data: Vec<u8> = (0u16..600).map(|i| (i * 31 % 251) as u8).collect();
        let whole = crc32(&data);
        for split in [0, 1, 7, 300, 599, 600] {
            let mut c = Crc32::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_the_checksum() {
        let data = vec![0xA5u8; 128];
        let base = crc32(&data);
        for byte in [0usize, 64, 127] {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), base, "flip {byte}:{bit} undetected");
            }
        }
    }
}

//! The fault-tolerant training loop.
//!
//! [`ResilientTrainer`] wraps a [`Trainer`] with the recovery discipline
//! the robustness milestone specifies:
//!
//! * **Exact step retry.** Each optimizer step snapshots the data RNG,
//!   runs the accumulation phase under `catch_unwind`, and validates the
//!   result (finite loss, finite gradients) *before* the optimizer
//!   touches any weight. A worker panic or a NaN/Inf rolls the attempt
//!   back (zero gradients, restore RNG) and retries with bounded
//!   exponential backoff — a recovered retry resamples the exact same
//!   batches and is bit-identical to a fault-free step.
//! * **Step skip.** A step that fails every retry is skipped: the data
//!   RNG advances past its batches, weights and optimizer state stay
//!   untouched, and training continues. Too many consecutive skips abort
//!   with [`TrainAbort`].
//! * **Periodic atomic checkpoints.** Every `checkpoint_every` steps a
//!   v2 checkpoint (weights + Adam moments + step + RNG state, CRC32
//!   checksummed) is written via write-temp + fsync + rename, with its
//!   own retry budget; old checkpoints are pruned. A torn or injected
//!   I/O failure can never leave a corrupt committed file.
//! * **Deadline & cancellation discipline.** With
//!   [`ResilienceConfig::step_deadline`] set, every step attempt runs
//!   under a *fresh* exec deadline; an attempt that blows its budget
//!   unwinds at the next cooperative cancellation point and is retried
//!   with new budget (deadline expiry is transient by construction). A
//!   tripped [`ResilienceConfig::cancel`] token is the opposite: a
//!   command, not a fault — the step rolls back immediately and is
//!   never retried, mirroring the race-sanitizer rule.
//! * **Auto-resume.** [`ResilientTrainer::resume_latest`] scans the
//!   checkpoint directory newest-first, skips any file that fails CRC or
//!   structural validation, and restores the first valid one.
//!
//! Every detection and recovery increments the `resilience.*` telemetry
//! counters declared by the fault-site catalogue in
//! `megablocks-resilience`.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

use megablocks_core::checkpoint::{load_train_state_file, save_train_state_atomic, TrainState};
use megablocks_data::TokenDataset;
use megablocks_exec as exec;
use megablocks_resilience as resilience;
use megablocks_resilience::sites::{
    CHECKPOINT_IO, EXEC_BAND_STALL, EXEC_WORKER_PANIC, KERNEL_NAN_POISON,
};
use megablocks_resilience::RetryPolicy;
use megablocks_telemetry as telemetry;

use crate::{TrainLog, Trainer};

/// Configuration of the fault-tolerant loop.
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Where checkpoints live; `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Checkpoint every N optimizer steps (0 disables periodic saves).
    pub checkpoint_every: usize,
    /// Completed checkpoints retained after each successful save.
    pub keep_checkpoints: usize,
    /// Retry budget and backoff for failed steps and checkpoint writes.
    pub retry: RetryPolicy,
    /// Consecutive skipped steps tolerated before training aborts.
    pub max_consecutive_skips: usize,
    /// Wall-clock budget for one step attempt. Each attempt (first run
    /// and every retry) executes under a fresh [`exec::Deadline`] this
    /// far in the future; `None` leaves steps unbounded.
    pub step_deadline: Option<Duration>,
    /// External cancellation: when this token (or an ancestor) trips,
    /// the in-flight step unwinds at its next cooperative check, rolls
    /// back, and is *not* retried. `None` disables external cancel.
    pub cancel: Option<exec::CancelToken>,
    /// When set, the trainer holds a [`telemetry::FlushOnDrop`] guard
    /// exporting the metric registry (JSONL, at this path) and the
    /// timeline trace (same path with a `.trace.json` extension) when it
    /// is dropped — including during a panic unwind, so chaos-run
    /// observability is never silently truncated by an abort.
    pub telemetry_export: Option<PathBuf>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            checkpoint_dir: None,
            checkpoint_every: 0,
            keep_checkpoints: 2,
            retry: RetryPolicy::default_transient(),
            max_consecutive_skips: 4,
            step_deadline: None,
            cancel: None,
            telemetry_export: None,
        }
    }
}

/// What the fault-tolerant loop observed and did.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceReport {
    /// Optimizer steps that completed (including after retries).
    pub steps_completed: usize,
    /// Step attempts that were retried after a rollback.
    pub step_retries: usize,
    /// Steps abandoned after exhausting the retry budget.
    pub steps_skipped: usize,
    /// Worker panics caught during accumulation.
    pub worker_panics: usize,
    /// Attempts rolled back for a non-finite loss or gradient.
    pub nonfinite_steps: usize,
    /// Attempts rolled back because the step deadline (or the exec
    /// stall watchdog) expired; each was retried with a fresh budget.
    pub deadline_steps: usize,
    /// Steps rolled back and abandoned because the cancel token tripped.
    pub cancelled_steps: usize,
    /// Checkpoints successfully committed to disk.
    pub checkpoints_written: usize,
    /// Checkpoint saves that failed even after retries (training
    /// continues; the failure is recorded here and in telemetry).
    pub checkpoint_failures: usize,
    /// The step restored by [`ResilientTrainer::resume_latest`], if any.
    pub resumed_from_step: Option<u64>,
}

/// Training gave up: too many consecutive steps failed every retry.
#[derive(Debug)]
pub struct TrainAbort {
    /// The optimizer step at which training stopped.
    pub step: usize,
    /// Consecutive steps skipped leading up to the abort.
    pub consecutive_skips: usize,
    /// The failure reason of the final attempt.
    pub last_reason: String,
}

impl std::fmt::Display for TrainAbort {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "training aborted at step {}: {} consecutive steps failed every retry (last: {})",
            self.step, self.consecutive_skips, self.last_reason
        )
    }
}

impl std::error::Error for TrainAbort {}

/// A [`Trainer`] wrapped in retry, rollback, checkpoint and resume
/// machinery. See the module docs for the recovery contract.
#[derive(Debug)]
pub struct ResilientTrainer {
    trainer: Trainer,
    cfg: ResilienceConfig,
    report: ResilienceReport,
    consecutive_skips: usize,
    /// Flushes telemetry sinks on drop — even when dropping because a
    /// panic is unwinding through the training loop.
    _flush: Option<telemetry::FlushOnDrop>,
}

impl ResilientTrainer {
    /// Wraps `trainer` with the fault-tolerance policy `cfg`.
    pub fn new(trainer: Trainer, cfg: ResilienceConfig) -> Self {
        let flush = cfg.telemetry_export.as_ref().map(|path| {
            telemetry::FlushOnDrop::new()
                .jsonl(path.clone())
                .trace(path.with_extension("trace.json"))
        });
        ResilientTrainer {
            trainer,
            cfg,
            report: ResilienceReport::default(),
            consecutive_skips: 0,
            _flush: flush,
        }
    }

    /// The wrapped trainer.
    pub fn trainer(&self) -> &Trainer {
        &self.trainer
    }

    /// Mutable access to the wrapped trainer.
    pub fn trainer_mut(&mut self) -> &mut Trainer {
        &mut self.trainer
    }

    /// Unwraps into the inner trainer.
    pub fn into_trainer(self) -> Trainer {
        self.trainer
    }

    /// What the loop has observed and recovered so far.
    pub fn report(&self) -> &ResilienceReport {
        &self.report
    }

    /// The context one step attempt runs under: the configured cancel
    /// token plus a *fresh* deadline (the budget restarts per attempt —
    /// that is what makes deadline expiry retryable).
    fn step_ctx(&self) -> exec::Ctx {
        let mut ctx = exec::Ctx::none();
        if let Some(token) = &self.cfg.cancel {
            ctx = ctx.with_token(token);
        }
        if let Some(budget) = self.cfg.step_deadline {
            ctx = ctx.with_deadline(exec::Deadline::after(budget));
        }
        ctx
    }

    /// Restores the newest valid checkpoint in the configured directory,
    /// returning its step. Corrupt or torn files (bad CRC, truncation,
    /// architecture mismatch) are skipped — older checkpoints are tried
    /// until one validates. Returns `None` when checkpointing is
    /// disabled, the directory is empty, or nothing validates.
    pub fn resume_latest(&mut self) -> Option<u64> {
        let dir = self.cfg.checkpoint_dir.clone()?;
        let mut ckpts = list_checkpoints(&dir);
        ckpts.sort_by_key(|c| std::cmp::Reverse(c.0));
        let mut saw_corrupt = false;
        for (_, path) in ckpts {
            let mut params = self.trainer.model_mut().params_mut();
            match load_train_state_file(&path, &mut params) {
                Ok(state) => {
                    drop(params);
                    if saw_corrupt {
                        // Falling back to an older checkpoint healed the
                        // torn newer one.
                        resilience::record_recovered(&CHECKPOINT_IO);
                    }
                    let step = state.step;
                    self.apply_state(state);
                    self.report.resumed_from_step = Some(step);
                    telemetry::counter("resilience.resumed").inc();
                    telemetry::trace_instant("resilience.resumed");
                    return Some(step);
                }
                Err(e) => {
                    saw_corrupt = true;
                    resilience::record_detected(&CHECKPOINT_IO);
                    telemetry::counter("resilience.checkpoint.rejected").inc();
                    let _ = e; // surfaced via counters; older files are tried next
                }
            }
        }
        None
    }

    fn apply_state(&mut self, state: TrainState) {
        self.trainer.set_step(state.step as usize);
        // A v1 checkpoint (weights only) carries a zero RNG state and no
        // moments: keep the constructed RNG/optimizer and restart the
        // schedule from the restored weights.
        if state.rng_state != [0u64; 4] {
            self.trainer.set_rng_state(state.rng_state);
        }
        if state.has_optimizer() {
            self.trainer
                .optimizer_mut()
                .restore(state.opt_steps, state.m, state.v);
        }
    }

    /// Runs one fault-tolerant optimizer step. `Ok(Some(log))` is a
    /// completed step, `Ok(None)` a skipped one (every retry failed; the
    /// data stream advanced past its batches, weights untouched).
    ///
    /// # Errors
    ///
    /// Returns [`TrainAbort`] once more than
    /// [`ResilienceConfig::max_consecutive_skips`] successive steps
    /// skip.
    pub fn train_step(&mut self, data: &TokenDataset) -> Result<Option<TrainLog>, TrainAbort> {
        let rng_snapshot = self.trainer.rng_state();
        let mut last_reason = String::new();
        let mut saw_panic = false;
        let mut saw_nonfinite = false;
        let mut saw_deadline = false;
        for attempt in 0..=self.cfg.retry.max_retries {
            if attempt > 0 {
                self.report.step_retries += 1;
                telemetry::counter_with("resilience.retries", "train.step").inc();
                telemetry::trace_instant("resilience.step_retry");
                let delay = self.cfg.retry.backoff(attempt - 1);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            let ctx = self.step_ctx();
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let _ambient = exec::cancel::enter(&ctx);
                self.trainer.accumulate_step(data)
            }));
            match outcome {
                Ok(pending) => {
                    if pending.ce_loss().is_finite() && self.trainer.grads_finite() {
                        if saw_panic {
                            resilience::record_recovered(&EXEC_WORKER_PANIC);
                        }
                        if saw_nonfinite {
                            resilience::record_recovered(&KERNEL_NAN_POISON);
                        }
                        if saw_deadline {
                            resilience::record_recovered(&EXEC_BAND_STALL);
                        }
                        let log = self.trainer.apply_step(pending);
                        self.report.steps_completed += 1;
                        self.consecutive_skips = 0;
                        self.maybe_checkpoint();
                        return Ok(Some(log));
                    }
                    resilience::record_detected(&KERNEL_NAN_POISON);
                    self.report.nonfinite_steps += 1;
                    telemetry::counter("resilience.trainer.nonfinite").inc();
                    saw_nonfinite = true;
                    last_reason =
                        format!("non-finite loss or gradient (ce = {})", pending.ce_loss());
                }
                Err(payload) => {
                    last_reason = panic_reason(payload.as_ref());
                    // A cancelled step is a command, not a fault:
                    // retrying work someone asked to stop cannot
                    // succeed. Roll back, count it, and skip without
                    // burning the retry budget.
                    if last_reason.starts_with(exec::CANCELLED_PANIC_PREFIX) {
                        self.report.cancelled_steps += 1;
                        telemetry::counter("resilience.trainer.cancelled").inc();
                        telemetry::trace_instant("resilience.step_cancelled");
                        self.trainer.zero_grads();
                        self.trainer.set_rng_state(rng_snapshot);
                        break;
                    }
                    // A blown deadline (or a watchdog-declared stall) is
                    // retryable *because* the next attempt gets a fresh
                    // budget; classify it apart from worker panics.
                    if last_reason.starts_with(exec::DEADLINE_PANIC_PREFIX) {
                        self.report.deadline_steps += 1;
                        telemetry::counter("resilience.trainer.deadline").inc();
                        saw_deadline = true;
                        self.trainer.zero_grads();
                        self.trainer.set_rng_state(rng_snapshot);
                        continue;
                    }
                    resilience::record_detected(&EXEC_WORKER_PANIC);
                    self.report.worker_panics += 1;
                    telemetry::counter("resilience.trainer.panics").inc();
                    saw_panic = true;
                    // A race reported by the exec sanitizer is a kernel
                    // bug, not a transient fault: the same bands collide
                    // on every replay, so retrying only burns the budget.
                    // Roll back and fall through to the skip path.
                    if last_reason.starts_with(megablocks_exec::RACE_PANIC_PREFIX) {
                        telemetry::counter("resilience.trainer.races").inc();
                        self.trainer.zero_grads();
                        self.trainer.set_rng_state(rng_snapshot);
                        break;
                    }
                }
            }
            // Roll the attempt back exactly: discard partial gradient
            // accumulation and rewind the data stream.
            self.trainer.zero_grads();
            self.trainer.set_rng_state(rng_snapshot);
        }

        // Retries exhausted: skip this step's data and move on with the
        // weights untouched.
        self.trainer.skip_step_data(data);
        self.report.steps_skipped += 1;
        self.consecutive_skips += 1;
        telemetry::counter("resilience.trainer.skipped").inc();
        telemetry::trace_instant("resilience.step_skip");
        if self.consecutive_skips > self.cfg.max_consecutive_skips {
            return Err(TrainAbort {
                step: self.trainer.step_count(),
                consecutive_skips: self.consecutive_skips,
                last_reason,
            });
        }
        Ok(None)
    }

    /// Trains for `steps` step attempts, returning the logs of the
    /// completed ones (skipped steps produce no log).
    ///
    /// # Errors
    ///
    /// Propagates [`TrainAbort`] from [`ResilientTrainer::train_step`].
    pub fn train(
        &mut self,
        data: &TokenDataset,
        steps: usize,
    ) -> Result<Vec<TrainLog>, TrainAbort> {
        let mut logs = Vec::with_capacity(steps);
        for _ in 0..steps {
            if let Some(log) = self.train_step(data)? {
                logs.push(log);
            }
        }
        Ok(logs)
    }

    fn maybe_checkpoint(&mut self) {
        let every = self.cfg.checkpoint_every;
        if every == 0
            || self.cfg.checkpoint_dir.is_none()
            || !self.trainer.step_count().is_multiple_of(every)
        {
            return;
        }
        self.checkpoint_now();
    }

    /// Writes a v2 checkpoint of the current training state, atomically
    /// and with the configured retry budget. Failure (after retries) is
    /// recorded in the report and telemetry but does not stop training.
    pub fn checkpoint_now(&mut self) {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else {
            return;
        };
        if std::fs::create_dir_all(&dir).is_err() {
            self.report.checkpoint_failures += 1;
            telemetry::counter("resilience.checkpoint.failed").inc();
            return;
        }
        let step = self.trainer.step_count() as u64;
        let (t, m, v) = self.trainer.optimizer().state();
        let state = TrainState {
            step,
            opt_steps: t,
            rng_state: self.trainer.rng_state(),
            m: m.to_vec(),
            v: v.to_vec(),
        };
        let path = dir.join(format!("step-{step:08}.ckpt"));
        let retry = self.cfg.retry;
        let trainer = &mut self.trainer;
        let mut failures = 0u32;
        let result = resilience::run_with_retry(&retry, "checkpoint.write", || {
            let params = trainer.model_mut().params_mut();
            save_train_state_atomic(&path, &params, &state).inspect_err(|_| {
                failures += 1;
                resilience::record_detected(&CHECKPOINT_IO);
            })
        });
        match result {
            Ok(()) => {
                if failures > 0 {
                    resilience::record_recovered(&CHECKPOINT_IO);
                }
                self.report.checkpoints_written += 1;
                telemetry::trace_instant("resilience.checkpoint_written");
                prune_checkpoints(&dir, self.cfg.keep_checkpoints.max(1));
            }
            Err(_) => {
                self.report.checkpoint_failures += 1;
                telemetry::counter("resilience.checkpoint.failed").inc();
            }
        }
    }
}

/// Checkpoints in `dir` as `(step, path)` pairs (non-checkpoint files are
/// ignored).
fn list_checkpoints(dir: &Path) -> Vec<(u64, PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    entries
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            let step = name.strip_prefix("step-")?.strip_suffix(".ckpt")?;
            Some((step.parse().ok()?, e.path()))
        })
        .collect()
}

fn prune_checkpoints(dir: &Path, keep: usize) {
    let mut ckpts = list_checkpoints(dir);
    ckpts.sort_by_key(|(step, _)| *step);
    let excess = ckpts.len().saturating_sub(keep);
    for (_, path) in ckpts.into_iter().take(excess) {
        let _ = std::fs::remove_file(path);
    }
}

fn panic_reason(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FfnKind, Trainer, TrainerConfig, TransformerConfig, TransformerLm};
    use megablocks_data::{PileConfig, SyntheticPile, TokenDataset};
    use megablocks_tensor::init::seeded_rng;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let id = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!("mbrs-{tag}-{}-{id}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn dataset() -> TokenDataset {
        SyntheticPile::generate(
            &PileConfig {
                vocab_size: 64,
                num_clusters: 4,
                num_tokens: 4_000,
                mean_doc_len: 32,
                branching: 2,
                noise: 0.05,
            },
            11,
        )
        .split(0.9)
        .0
    }

    fn trainer(total_steps: usize) -> Trainer {
        let mut model_cfg = TransformerConfig::tiny(FfnKind::Dense);
        model_cfg.seq_len = 16;
        let mut rng = seeded_rng(21);
        let model = TransformerLm::new(model_cfg, &mut rng);
        let cfg = TrainerConfig {
            batch_size: 4,
            micro_batch_size: 2,
            seq_len: 16,
            lr_max: 2e-3,
            warmup_steps: 2,
            total_steps,
            clip: 1.0,
            seed: 5,
        };
        Trainer::new(model, cfg)
    }

    #[test]
    fn resume_from_checkpoint_is_bit_exact() {
        let data = dataset();
        // Baseline: 10 uninterrupted steps.
        let mut baseline = trainer(10);
        let _ = baseline.train(&data, 10);
        let reference = baseline.evaluate(&data, 2).loss;

        // Crashy run: 6 steps, checkpoint at step 6, then a "new process"
        // resumes and finishes the remaining 4.
        let dir = temp_dir("resume");
        let cfg = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 6,
            ..ResilienceConfig::default()
        };
        let mut first = ResilientTrainer::new(trainer(10), cfg.clone());
        first.train(&data, 6).expect("no faults configured");
        assert_eq!(first.report().checkpoints_written, 1);
        drop(first); // the crash

        let mut resumed = ResilientTrainer::new(trainer(10), cfg);
        assert_eq!(resumed.resume_latest(), Some(6));
        assert_eq!(resumed.trainer().step_count(), 6);
        resumed.train(&data, 4).expect("no faults configured");
        let after = resumed.trainer().evaluate(&data, 2).loss;
        assert_eq!(
            after.to_bits(),
            reference.to_bits(),
            "v2 resume must replay the exact baseline trajectory: {reference} vs {after}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn old_checkpoints_are_pruned() {
        let data = dataset();
        let dir = temp_dir("prune");
        let cfg = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 1,
            keep_checkpoints: 2,
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(5), cfg);
        rt.train(&data, 5).expect("no faults configured");
        assert_eq!(rt.report().checkpoints_written, 5);
        let mut steps: Vec<u64> = list_checkpoints(&dir).into_iter().map(|(s, _)| s).collect();
        steps.sort_unstable();
        assert_eq!(steps, vec![4, 5], "only the newest two survive");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_skips_a_corrupt_newest_checkpoint() {
        let data = dataset();
        let dir = temp_dir("corrupt");
        let cfg = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            checkpoint_every: 2,
            keep_checkpoints: 3,
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(6), cfg.clone());
        rt.train(&data, 6).expect("no faults configured");
        // Tear the newest checkpoint the way a crash mid-write would.
        let mut ckpts = list_checkpoints(&dir);
        ckpts.sort_by_key(|(s, _)| *s);
        let (newest_step, newest_path) = ckpts.last().cloned().expect("checkpoints exist");
        assert_eq!(newest_step, 6);
        let bytes = std::fs::read(&newest_path).expect("read checkpoint");
        std::fs::write(&newest_path, &bytes[..bytes.len() / 2]).expect("truncate");

        let mut resumed = ResilientTrainer::new(trainer(6), cfg);
        assert_eq!(resumed.resume_latest(), Some(4), "falls back to step 4");
        assert_eq!(resumed.report().resumed_from_step, Some(4));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn resume_with_no_checkpoints_is_a_noop() {
        let dir = temp_dir("empty");
        let cfg = ResilienceConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(4), cfg);
        assert_eq!(rt.resume_latest(), None);
        assert_eq!(rt.trainer().step_count(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn expired_step_deadline_is_retried_then_skipped() {
        let data = dataset();
        // A zero budget expires before the first kernel launch of every
        // attempt, so each one dies at a cooperative cancellation point.
        // The loop must classify those as retryable deadline rollbacks
        // (fresh budget per attempt), burn the retry budget, and skip —
        // never panic and never touch the weights.
        let cfg = ResilienceConfig {
            step_deadline: Some(Duration::ZERO),
            retry: RetryPolicy::immediate(2),
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(4), cfg);
        let outcome = rt
            .train_step(&data)
            .expect("one skip is below the abort bar");
        assert!(outcome.is_none(), "the step must be skipped, not completed");
        let report = rt.report();
        assert_eq!(report.deadline_steps, 3, "initial attempt + 2 retries");
        assert_eq!(report.step_retries, 2);
        assert_eq!(report.steps_skipped, 1);
        assert_eq!(report.cancelled_steps, 0);
        assert_eq!(
            report.worker_panics, 0,
            "deadline expiry must not be misclassified as a worker panic"
        );
        assert_eq!(rt.trainer().step_count(), 0, "weights stay untouched");
    }

    #[test]
    fn generous_step_deadline_trains_normally() {
        let data = dataset();
        let cfg = ResilienceConfig {
            step_deadline: Some(Duration::from_secs(3600)),
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(3), cfg);
        let logs = rt.train(&data, 3).expect("healthy run");
        assert_eq!(logs.len(), 3);
        let report = rt.report();
        assert_eq!(report.steps_completed, 3);
        assert_eq!(report.deadline_steps, 0);
        assert_eq!(report.step_retries, 0);
    }

    #[test]
    fn tripped_cancel_token_rolls_back_without_retrying() {
        let data = dataset();
        let token = exec::CancelToken::new();
        let cfg = ResilienceConfig {
            cancel: Some(token.clone()),
            retry: RetryPolicy::immediate(3),
            max_consecutive_skips: 10,
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(4), cfg);
        // A healthy step first, to prove the live token is inert.
        let first = rt.train_step(&data).expect("live token");
        assert!(first.is_some());

        // Cancellation is a command, not a fault: the step rolls back
        // and is skipped without spending a single retry.
        token.cancel();
        let rng_before = rt.trainer().rng_state();
        let outcome = rt.train_step(&data).expect("one skip is tolerated");
        assert!(outcome.is_none());
        let report = rt.report();
        assert_eq!(report.cancelled_steps, 1);
        assert_eq!(report.step_retries, 0, "cancel must not burn retries");
        assert_eq!(report.deadline_steps, 0);
        assert_eq!(report.steps_skipped, 1);
        assert_eq!(rt.trainer().step_count(), 1, "only the healthy step landed");
        // The skip advanced the data stream past the cancelled batches.
        assert_ne!(rt.trainer().rng_state(), rng_before);
    }

    #[test]
    fn parent_token_cancellation_reaches_the_trainer() {
        let data = dataset();
        let parent = exec::CancelToken::new();
        let cfg = ResilienceConfig {
            cancel: Some(parent.child()),
            retry: RetryPolicy::immediate(3),
            ..ResilienceConfig::default()
        };
        let mut rt = ResilientTrainer::new(trainer(4), cfg);
        parent.cancel();
        let outcome = rt.train_step(&data).expect("one skip is tolerated");
        assert!(outcome.is_none());
        assert_eq!(rt.report().cancelled_steps, 1);
        assert_eq!(rt.report().step_retries, 0);
    }
}

//! Layer normalization with trainable gain/bias, wrapping the primitives
//! from `megablocks_tensor::ops`.

use megablocks_core::Param;
use megablocks_tensor::ops::{layer_norm, layer_norm_backward, LayerNormCache};
use megablocks_tensor::Matrix;

/// A layer-norm module: `y = (x - mean) / std * gamma + beta` per row.
///
/// `gamma`/`beta` are stored as `1 x hidden` [`Param`]s so one optimizer
/// path handles every parameter in the model.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Param,
    beta: Param,
    eps: f32,
}

impl LayerNorm {
    /// Creates a layer norm over `hidden` features (`gamma = 1`,
    /// `beta = 0`, `eps = 1e-5`).
    pub fn new(hidden: usize) -> Self {
        Self {
            gamma: Param::new(Matrix::full(1, hidden, 1.0)),
            beta: Param::new(Matrix::zeros(1, hidden)),
            eps: 1e-5,
        }
    }

    /// Trainable parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    /// Parameter count (`2 * hidden`).
    pub fn param_count(&self) -> usize {
        self.gamma.count() + self.beta.count()
    }

    /// Forward pass; the cache feeds [`LayerNorm::backward`].
    pub fn forward(&self, x: &Matrix) -> (Matrix, LayerNormCache) {
        layer_norm(
            x,
            self.gamma.value().row(0),
            self.beta.value().row(0),
            self.eps,
        )
    }

    /// Backward pass: accumulates gamma/beta gradients, returns `dx`.
    pub fn backward(&mut self, x: &Matrix, dy: &Matrix, cache: &LayerNormCache) -> Matrix {
        let (dx, dgamma, dbeta) = layer_norm_backward(x, dy, self.gamma.value().row(0), cache);
        for (g, v) in self.gamma.grad_mut().row_mut(0).iter_mut().zip(&dgamma) {
            *g += v;
        }
        for (g, v) in self.beta.grad_mut().row_mut(0).iter_mut().zip(&dbeta) {
            *g += v;
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_init_normalizes() {
        let ln = LayerNorm::new(4);
        let x = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f32);
        let (y, _) = ln.forward(&x);
        for i in 0..3 {
            let mean: f32 = y.row(i).iter().sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4);
        }
        assert_eq!(ln.param_count(), 8);
    }

    #[test]
    fn backward_accumulates_param_grads() {
        let mut ln = LayerNorm::new(4);
        let x = Matrix::from_fn(2, 4, |i, j| ((i + j) as f32).sin());
        let (_, cache) = ln.forward(&x);
        let dy = Matrix::full(2, 4, 1.0);
        let dx = ln.backward(&x, &dy, &cache);
        assert_eq!(dx.shape(), (2, 4));
        // dbeta = column sums of dy = 2 everywhere.
        assert!(ln.params_mut()[1]
            .grad()
            .approx_eq(&Matrix::full(1, 4, 2.0), 1e-6));
    }
}

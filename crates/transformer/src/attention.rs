//! Causal multi-head self-attention with explicit backward pass.

use megablocks_core::Param;
use megablocks_tensor::ops::{
    add_bias, bias_backward, softmax_rows_backward, softmax_rows_inplace,
};
use megablocks_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::rngs::StdRng;

/// Forward-pass cache for [`Attention::backward`].
#[derive(Debug, Clone)]
pub struct AttentionCache {
    x: Matrix,
    qkv: Matrix,
    probs: Vec<Matrix>,
    ctx: Matrix,
    batch: usize,
    seq: usize,
}

/// Multi-head causal self-attention (GPT-2 style, with qkv and projection
/// biases).
///
/// Activations are `(batch * seq) x hidden` row-major matrices; sequences
/// are contiguous row groups.
#[derive(Debug, Clone)]
pub struct Attention {
    w_qkv: Param,
    b_qkv: Param,
    w_o: Param,
    b_o: Param,
    num_heads: usize,
    hidden: usize,
}

impl Attention {
    /// Creates an attention module.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `num_heads`.
    pub fn new(hidden: usize, num_heads: usize, rng: &mut StdRng) -> Self {
        assert!(
            hidden.is_multiple_of(num_heads),
            "hidden must be divisible by num_heads"
        );
        Self {
            w_qkv: Param::new(init::gpt2_normal(hidden, 3 * hidden, rng)),
            b_qkv: Param::new(Matrix::zeros(1, 3 * hidden)),
            w_o: Param::new(init::gpt2_normal(hidden, hidden, rng)),
            b_o: Param::new(Matrix::zeros(1, hidden)),
            num_heads,
            hidden,
        }
    }

    /// Trainable parameters, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![
            &mut self.w_qkv,
            &mut self.b_qkv,
            &mut self.w_o,
            &mut self.b_o,
        ]
    }

    /// Parameter count (`4h² + 4h`).
    pub fn param_count(&self) -> usize {
        self.w_qkv.count() + self.b_qkv.count() + self.w_o.count() + self.b_o.count()
    }

    /// Forward pass over `batch` sequences of length `seq`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != batch * seq` or `x.cols() != hidden`.
    pub fn forward(&self, x: &Matrix, batch: usize, seq: usize) -> (Matrix, AttentionCache) {
        assert_eq!(x.rows(), batch * seq, "row count must be batch * seq");
        assert_eq!(x.cols(), self.hidden, "feature size mismatch");
        let h = self.hidden;
        let nh = self.num_heads;
        let d = h / nh;
        let scale = 1.0 / (d as f32).sqrt();

        let mut qkv = matmul(x, self.w_qkv.value());
        add_bias(&mut qkv, self.b_qkv.value().row(0));

        let mut ctx = Matrix::zeros(batch * seq, h);
        let mut probs = Vec::with_capacity(batch * nh);
        for b in 0..batch {
            for head in 0..nh {
                let q = extract(&qkv, b, seq, head * d, d);
                let k = extract(&qkv, b, seq, h + head * d, d);
                let v = extract(&qkv, b, seq, 2 * h + head * d, d);
                let mut scores = matmul_nt(&q, &k);
                scores.scale(scale);
                apply_causal_mask(&mut scores);
                softmax_rows_inplace(&mut scores);
                let ctx_h = matmul(&scores, &v);
                insert(&mut ctx, &ctx_h, b, seq, head * d);
                probs.push(scores);
            }
        }

        let mut out = matmul(&ctx, self.w_o.value());
        add_bias(&mut out, self.b_o.value().row(0));
        (
            out,
            AttentionCache {
                x: x.clone(),
                qkv,
                probs,
                ctx,
                batch,
                seq,
            },
        )
    }

    /// Backward pass; accumulates parameter gradients and returns `dx`.
    ///
    /// # Panics
    ///
    /// Panics if `d_out` does not match the forward output shape.
    pub fn backward(&mut self, cache: &AttentionCache, d_out: &Matrix) -> Matrix {
        let h = self.hidden;
        let nh = self.num_heads;
        let d = h / nh;
        let (batch, seq) = (cache.batch, cache.seq);
        assert_eq!(d_out.shape(), (batch * seq, h), "d_out shape mismatch");
        let scale = 1.0 / (d as f32).sqrt();

        // Output projection.
        let d_ctx = matmul_nt(d_out, self.w_o.value());
        self.w_o.accumulate(&matmul_tn(&cache.ctx, d_out));
        add_row_grad(self.b_o.grad_mut(), &bias_backward(d_out));

        // Per-head attention backward.
        let mut d_qkv = Matrix::zeros(batch * seq, 3 * h);
        for b in 0..batch {
            for head in 0..nh {
                let q = extract(&cache.qkv, b, seq, head * d, d);
                let k = extract(&cache.qkv, b, seq, h + head * d, d);
                let v = extract(&cache.qkv, b, seq, 2 * h + head * d, d);
                let probs = &cache.probs[b * nh + head];
                let d_ctx_h = extract(&d_ctx, b, seq, head * d, d);

                let dv = matmul_tn(probs, &d_ctx_h);
                let d_probs = matmul_nt(&d_ctx_h, &v);
                let mut d_scores = softmax_rows_backward(probs, &d_probs);
                // Masked positions have prob 0, so their gradient is
                // already 0; scale handles the 1/sqrt(d).
                d_scores.scale(scale);
                let dq = matmul(&d_scores, &k);
                let dk = matmul_tn(&d_scores, &q);

                insert(&mut d_qkv, &dq, b, seq, head * d);
                insert(&mut d_qkv, &dk, b, seq, h + head * d);
                insert(&mut d_qkv, &dv, b, seq, 2 * h + head * d);
            }
        }

        // Input projection.
        self.w_qkv.accumulate(&matmul_tn(&cache.x, &d_qkv));
        add_row_grad(self.b_qkv.grad_mut(), &bias_backward(&d_qkv));
        matmul_nt(&d_qkv, self.w_qkv.value())
    }
}

/// Copies rows `b*seq..(b+1)*seq`, columns `col0..col0+width` into a fresh
/// `seq x width` matrix.
fn extract(m: &Matrix, b: usize, seq: usize, col0: usize, width: usize) -> Matrix {
    Matrix::from_fn(seq, width, |i, j| m[(b * seq + i, col0 + j)])
}

/// Adds `block` into rows `b*seq..`, columns `col0..` of `m`.
fn insert(m: &mut Matrix, block: &Matrix, b: usize, seq: usize, col0: usize) {
    for i in 0..block.rows() {
        let dst = m.row_mut(b * seq + i);
        for (j, v) in block.row(i).iter().enumerate() {
            dst[col0 + j] += v;
        }
    }
}

fn apply_causal_mask(scores: &mut Matrix) {
    let n = scores.rows();
    for i in 0..n {
        for j in (i + 1)..n {
            scores[(i, j)] = f32::NEG_INFINITY;
        }
    }
}

fn add_row_grad(grad: &mut Matrix, db: &[f32]) {
    for (g, v) in grad.row_mut(0).iter_mut().zip(db) {
        *g += v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_tensor::init::seeded_rng;

    #[test]
    fn output_shape_and_param_count() {
        let mut rng = seeded_rng(1);
        let attn = Attention::new(16, 4, &mut rng);
        let x = init::normal(2 * 5, 16, 1.0, &mut rng);
        let (y, _) = attn.forward(&x, 2, 5);
        assert_eq!(y.shape(), (10, 16));
        assert_eq!(attn.param_count(), 4 * 16 * 16 + 4 * 16);
    }

    #[test]
    fn causality_holds() {
        // Changing a future token must not change earlier outputs.
        let mut rng = seeded_rng(2);
        let attn = Attention::new(8, 2, &mut rng);
        let x = init::normal(6, 8, 1.0, &mut rng);
        let (y, _) = attn.forward(&x, 1, 6);
        let mut x2 = x.clone();
        for j in 0..8 {
            x2[(5, j)] += 3.0; // perturb the last position
        }
        let (y2, _) = attn.forward(&x2, 1, 6);
        for i in 0..5 {
            for j in 0..8 {
                assert!(
                    (y[(i, j)] - y2[(i, j)]).abs() < 1e-6,
                    "position {i} leaked future information"
                );
            }
        }
        // The final position must change (sanity that the perturbation did
        // something).
        assert!(y.row(5) != y2.row(5));
    }

    #[test]
    fn sequences_in_batch_do_not_interact() {
        let mut rng = seeded_rng(3);
        let attn = Attention::new(8, 2, &mut rng);
        let x = init::normal(8, 8, 1.0, &mut rng);
        let (y, _) = attn.forward(&x, 2, 4);
        // Run sequence 0 alone; outputs must agree.
        let x0 = x.rows_range(0, 4);
        let (y0, _) = attn.forward(&x0, 1, 4);
        assert!(y.rows_range(0, 4).approx_eq(&y0, 1e-5));
    }

    #[test]
    fn backward_matches_finite_difference() {
        let mut rng = seeded_rng(4);
        let mut attn = Attention::new(6, 2, &mut rng);
        let x = init::normal(4, 6, 0.8, &mut rng);
        let w = init::normal(4, 6, 0.5, &mut rng); // fixed projection for a scalar objective

        let objective = |attn: &Attention, x: &Matrix| -> f32 {
            let (y, _) = attn.forward(x, 1, 4);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let (y, cache) = attn.forward(&x, 1, 4);
        let _ = y;
        let dx = attn.backward(&cache, &w);

        let eps = 1e-3;
        for i in 0..4 {
            for j in 0..6 {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                let num = (objective(&attn, &xp) - objective(&attn, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx[(i, j)]).abs() < 3e-2 * (1.0 + num.abs()),
                    "dx({i},{j}): numeric {num}, analytic {}",
                    dx[(i, j)]
                );
            }
        }

        // Spot-check weight grads.
        let spots = [(0usize, 0usize), (3, 10), (5, 17)];
        for &(r, c) in &spots {
            let ana = attn.w_qkv.grad()[(r, c)];
            let orig = attn.w_qkv.value()[(r, c)];
            attn.w_qkv.value_mut()[(r, c)] = orig + eps;
            let fp = objective(&attn, &x);
            attn.w_qkv.value_mut()[(r, c)] = orig - eps;
            let fm = objective(&attn, &x);
            attn.w_qkv.value_mut()[(r, c)] = orig;
            let num = (fp - fm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 3e-2 * (1.0 + num.abs()),
                "dw_qkv({r},{c}): numeric {num}, analytic {ana}"
            );
        }
        // Bias grads: db_o = column sums of upstream gradient w.
        let db_o = attn.b_o.grad();
        let want = bias_backward(&w);
        for j in 0..6 {
            assert!((db_o[(0, j)] - want[j]).abs() < 1e-5);
        }
    }
}

//! A pre-norm Transformer block with a pluggable feed-forward layer.

use megablocks_core::{
    DenseFfn, DmoeCache, DroplessMoe, DroppingMoe, DroppingMoeCache, ExpertChoiceCache,
    ExpertChoiceMoe, FfnCache, MoeStats, Param,
};
use megablocks_tensor::ops::LayerNormCache;
use megablocks_tensor::Matrix;
use rand::rngs::StdRng;

use crate::{Attention, AttentionCache, FfnKind, LayerNorm};

/// The feed-forward sub-layer of a block: dense, dropless MoE, or
/// token-dropping MoE.
#[derive(Debug, Clone)]
pub enum BlockFfn {
    /// Dense 2-layer MLP (Megatron-LM baseline).
    Dense(DenseFfn),
    /// MegaBlocks dropless MoE.
    Dropless(DroplessMoe),
    /// Token-dropping MoE (Tutel baseline).
    Dropping(DroppingMoe),
    /// Block-sparse MoE with expert-choice routing (Zhou et al. 2022).
    ExpertChoice(ExpertChoiceMoe),
}

/// Cache of whichever FFN flavor ran in the forward pass.
#[derive(Debug, Clone)]
enum FfnCacheKind {
    Dense(FfnCache),
    Dropless(DmoeCache),
    Dropping(DroppingMoeCache),
    ExpertChoice(ExpertChoiceCache),
}

/// Forward-pass cache for [`Block::backward`].
#[derive(Debug, Clone)]
pub struct BlockCache {
    x: Matrix,
    ln1: LayerNormCache,
    attn: AttentionCache,
    mid: Matrix,
    ln2: LayerNormCache,
    ffn: FfnCacheKind,
    /// MoE statistics of this block's forward pass (None for dense FFN).
    pub moe_stats: Option<MoeStats>,
}

/// One pre-norm Transformer block:
/// `x + attn(ln1(x))` followed by `· + ffn(ln2(·))`.
#[derive(Debug, Clone)]
pub struct Block {
    ln1: LayerNorm,
    attn: Attention,
    ln2: LayerNorm,
    ffn: BlockFfn,
}

impl Block {
    /// Creates a block for `hidden` features with the given FFN flavor.
    pub fn new(
        hidden: usize,
        num_heads: usize,
        ffn_hidden: usize,
        ffn: &FfnKind,
        rng: &mut StdRng,
    ) -> Self {
        let ffn = match ffn {
            FfnKind::Dense => BlockFfn::Dense(DenseFfn::new(hidden, ffn_hidden, rng)),
            FfnKind::Dropless(cfg) => BlockFfn::Dropless(DroplessMoe::new(cfg.clone(), rng)),
            FfnKind::Dropping(cfg) => BlockFfn::Dropping(DroppingMoe::new(cfg.clone(), rng)),
            FfnKind::ExpertChoice(cfg) => {
                BlockFfn::ExpertChoice(ExpertChoiceMoe::new(cfg.clone(), rng))
            }
        };
        Self {
            ln1: LayerNorm::new(hidden),
            attn: Attention::new(hidden, num_heads, rng),
            ln2: LayerNorm::new(hidden),
            ffn,
        }
    }

    /// Trainable parameters of the block, in a stable order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = self.ln1.params_mut();
        p.extend(self.attn.params_mut());
        p.extend(self.ln2.params_mut());
        match &mut self.ffn {
            BlockFfn::Dense(f) => p.extend(f.params_mut()),
            BlockFfn::Dropless(f) => p.extend(f.params_mut()),
            BlockFfn::Dropping(f) => p.extend(f.params_mut()),
            BlockFfn::ExpertChoice(f) => p.extend(f.params_mut()),
        }
        p
    }

    /// The FFN sub-layer (for inspection by experiments).
    pub fn ffn(&self) -> &BlockFfn {
        &self.ffn
    }

    /// Forward pass over `batch` sequences of length `seq`.
    pub fn forward(&self, x: &Matrix, batch: usize, seq: usize) -> (Matrix, BlockCache) {
        let (n1, ln1_cache) = self.ln1.forward(x);
        let (a, attn_cache) = self.attn.forward(&n1, batch, seq);
        let mut mid = x.clone();
        mid.add_assign(&a);

        let (n2, ln2_cache) = self.ln2.forward(&mid);
        let (f, ffn_cache, moe_stats) = match &self.ffn {
            BlockFfn::Dense(ffn) => {
                let (y, c) = ffn.forward(&n2);
                (y, FfnCacheKind::Dense(c), None)
            }
            BlockFfn::Dropless(moe) => {
                let out = moe.forward(&n2);
                (
                    out.output,
                    FfnCacheKind::Dropless(out.cache),
                    Some(out.stats),
                )
            }
            BlockFfn::Dropping(moe) => {
                let out = moe.forward(&n2);
                (
                    out.output,
                    FfnCacheKind::Dropping(out.cache),
                    Some(out.stats),
                )
            }
            BlockFfn::ExpertChoice(moe) => {
                let out = moe.forward(&n2);
                (
                    out.output,
                    FfnCacheKind::ExpertChoice(out.cache),
                    Some(out.stats),
                )
            }
        };
        let mut out = mid.clone();
        out.add_assign(&f);
        (
            out,
            BlockCache {
                x: x.clone(),
                ln1: ln1_cache,
                attn: attn_cache,
                mid,
                ln2: ln2_cache,
                ffn: ffn_cache,
                moe_stats,
            },
        )
    }

    /// Backward pass; accumulates parameter gradients and returns `dx`.
    pub fn backward(&mut self, cache: &BlockCache, d_out: &Matrix) -> Matrix {
        // Second residual: d_out flows to both mid and the FFN branch.
        let d_n2 = match (&mut self.ffn, &cache.ffn) {
            (BlockFfn::Dense(ffn), FfnCacheKind::Dense(c)) => ffn.backward(c, d_out),
            (BlockFfn::Dropless(moe), FfnCacheKind::Dropless(c)) => moe.backward(c, d_out),
            (BlockFfn::Dropping(moe), FfnCacheKind::Dropping(c)) => moe.backward(c, d_out),
            (BlockFfn::ExpertChoice(moe), FfnCacheKind::ExpertChoice(c)) => moe.backward(c, d_out),
            _ => unreachable!("cache flavor always matches the layer flavor"),
        };
        let mut d_mid = d_out.clone();
        d_mid.add_assign(&self.ln2.backward(&cache.mid, &d_n2, &cache.ln2));

        // First residual.
        let d_n1 = self.attn.backward(&cache.attn, &d_mid);
        let mut dx = d_mid;
        dx.add_assign(&self.ln1.backward(&cache.x, &d_n1, &cache.ln1));
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megablocks_core::MoeConfig;
    use megablocks_tensor::init::{normal, seeded_rng};

    #[test]
    fn dense_block_roundtrip_shapes() {
        let mut rng = seeded_rng(1);
        let mut block = Block::new(8, 2, 16, &FfnKind::Dense, &mut rng);
        let x = normal(6, 8, 1.0, &mut rng);
        let (y, cache) = block.forward(&x, 2, 3);
        assert_eq!(y.shape(), (6, 8));
        assert!(cache.moe_stats.is_none());
        let dx = block.backward(&cache, &Matrix::full(6, 8, 0.1));
        assert_eq!(dx.shape(), (6, 8));
    }

    #[test]
    fn moe_block_reports_stats() {
        let mut rng = seeded_rng(2);
        let moe = MoeConfig::new(8, 16, 2).with_block_size(4);
        let mut block = Block::new(8, 2, 16, &FfnKind::Dropless(moe), &mut rng);
        let x = normal(8, 8, 1.0, &mut rng);
        let (y, cache) = block.forward(&x, 2, 4);
        assert_eq!(y.shape(), (8, 8));
        let stats = cache.moe_stats.as_ref().unwrap();
        assert_eq!(stats.dropped_tokens, 0);
        assert_eq!(stats.tokens_per_expert.iter().sum::<usize>(), 8);
        let dx = block.backward(&cache, &Matrix::full(8, 8, 0.05));
        assert_eq!(dx.shape(), (8, 8));
    }

    #[test]
    fn block_gradient_matches_finite_difference() {
        let mut rng = seeded_rng(3);
        let mut block = Block::new(6, 2, 8, &FfnKind::Dense, &mut rng);
        let x = normal(4, 6, 0.6, &mut rng);
        let w = normal(4, 6, 0.5, &mut rng);

        let objective = |block: &Block, x: &Matrix| -> f32 {
            let (y, _) = block.forward(x, 1, 4);
            y.as_slice()
                .iter()
                .zip(w.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };

        let (_, cache) = block.forward(&x, 1, 4);
        let dx = block.backward(&cache, &w);
        let eps = 1e-3;
        for i in 0..4 {
            for j in 0..6 {
                let mut xp = x.clone();
                xp[(i, j)] += eps;
                let mut xm = x.clone();
                xm[(i, j)] -= eps;
                let num = (objective(&block, &xp) - objective(&block, &xm)) / (2.0 * eps);
                assert!(
                    (num - dx[(i, j)]).abs() < 4e-2 * (1.0 + num.abs()),
                    "dx({i},{j}): numeric {num}, analytic {}",
                    dx[(i, j)]
                );
            }
        }
    }
}

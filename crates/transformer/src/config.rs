//! Model configurations: the paper's Tables 1 and 2.
//!
//! Table 1 lists the dense Transformer family (XS..XL) with weight counts
//! and per-sequence GFLOPs; Table 2 the 64-expert top-1 MoE family built by
//! replacing every FFN with an MoE layer. Weight counts and the FLOP
//! expression from Narayanan et al. (2021b) are reproduced analytically so
//! the `repro table1`/`repro table2` commands regenerate the tables
//! exactly.

use megablocks_core::{CapacityFactor, MoeConfig};

/// Which feed-forward layer each Transformer block uses.
#[derive(Debug, Clone, PartialEq)]
pub enum FfnKind {
    /// Dense 2-layer MLP — the Megatron-LM baseline.
    Dense,
    /// The paper's dropless MoE, computed with block-sparse kernels.
    Dropless(MoeConfig),
    /// Token-dropping MoE computed with batched matmul — the Tutel
    /// baseline (static or dynamic capacity factor).
    Dropping(MoeConfig),
    /// Block-sparse MoE with expert-choice routing (Zhou et al. 2022) —
    /// the related-work router of §7, reusing the dMoE kernel machinery.
    ExpertChoice(MoeConfig),
}

/// Full architectural configuration of a Transformer LM.
#[derive(Debug, Clone, PartialEq)]
pub struct TransformerConfig {
    /// Vocabulary size (51200 in the paper, padded for Megatron).
    pub vocab_size: usize,
    /// Model dimension.
    pub hidden_size: usize,
    /// Number of Transformer blocks.
    pub num_layers: usize,
    /// Attention heads; the paper fixes head size to 64, so
    /// `num_heads = hidden_size / 64`.
    pub num_heads: usize,
    /// Maximum (and training) sequence length.
    pub seq_len: usize,
    /// Dense-equivalent FFN hidden size (`4 * hidden_size` in the paper).
    pub ffn_hidden_size: usize,
    /// The feed-forward flavor of every block.
    pub ffn: FfnKind,
}

impl TransformerConfig {
    /// A laptop-scale configuration for tests and examples: 2 layers,
    /// hidden 32, 2 heads, seq 8, vocab 64.
    pub fn tiny(ffn: FfnKind) -> Self {
        Self {
            vocab_size: 64,
            hidden_size: 32,
            num_layers: 2,
            num_heads: 2,
            seq_len: 8,
            ffn_hidden_size: 64,
            ffn,
        }
    }

    /// Head dimension (`hidden_size / num_heads`).
    pub fn head_dim(&self) -> usize {
        self.hidden_size / self.num_heads
    }

    /// Trainable parameter count, matching Megatron's accounting (tied
    /// input/output embeddings; attention and dense-FFN biases included;
    /// MoE experts bias-free with a bias-free router, as in MegaBlocks).
    pub fn param_count(&self) -> usize {
        let h = self.hidden_size;
        let embeddings = self.vocab_size * h + self.seq_len * h;
        let attn = 4 * h * h + 4 * h; // qkv + proj weights, qkv + proj biases
        let ln = 2 * 2 * h; // two pre-norms per block
        let ffn = match &self.ffn {
            FfnKind::Dense => 2 * h * self.ffn_hidden_size + self.ffn_hidden_size + h,
            FfnKind::Dropless(m) | FfnKind::Dropping(m) | FfnKind::ExpertChoice(m) => {
                m.param_count()
            }
        };
        embeddings + self.num_layers * (attn + ln + ffn) + 2 * h // final norm
    }

    /// Per-sequence training FLOPs via the Narayanan et al. (2021b)
    /// expression (see [`model_flops_per_sequence`]).
    pub fn flops_per_sequence(&self) -> f64 {
        model_flops_per_sequence(
            self.seq_len,
            self.num_layers,
            self.hidden_size,
            self.vocab_size,
        )
    }
}

/// Per-sequence forward+backward FLOPs of a decoder-only Transformer,
/// after Narayanan et al. (2021b) without activation recomputation:
///
/// `F = 72·s·l·h²·(1 + s/(6h)) + 6·s·h·V`
///
/// For a top-1 MoE of the same dimensions at capacity factor 1 the
/// *activated* FLOPs are identical — which is why Table 2 repeats Table 1's
/// GFLOP column.
pub fn model_flops_per_sequence(
    seq_len: usize,
    num_layers: usize,
    hidden: usize,
    vocab: usize,
) -> f64 {
    let s = seq_len as f64;
    let l = num_layers as f64;
    let h = hidden as f64;
    let v = vocab as f64;
    72.0 * s * l * h * h * (1.0 + s / (6.0 * h)) + 6.0 * s * h * v
}

/// The dense Transformer family of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransformerSize {
    /// hidden 512, 6 layers — 46M weights, 316 GFLOPs.
    Xs,
    /// hidden 768, 12 layers — 125M weights, 879 GFLOPs.
    Small,
    /// hidden 1024, 24 layers — 356M weights, 2487 GFLOPs.
    Medium,
    /// hidden 1536, 24 layers — 760M weights, 5122 GFLOPs.
    Large,
    /// hidden 2048, 24 layers — 1316M weights, 8684 GFLOPs.
    Xl,
}

impl TransformerSize {
    /// All Table 1 rows in order.
    pub const ALL: [TransformerSize; 5] = [
        TransformerSize::Xs,
        TransformerSize::Small,
        TransformerSize::Medium,
        TransformerSize::Large,
        TransformerSize::Xl,
    ];

    /// The row label used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            TransformerSize::Xs => "XS",
            TransformerSize::Small => "Small",
            TransformerSize::Medium => "Medium",
            TransformerSize::Large => "Large",
            TransformerSize::Xl => "XL",
        }
    }

    /// `(hidden_size, num_layers)` of the row.
    pub fn dims(self) -> (usize, usize) {
        match self {
            TransformerSize::Xs => (512, 6),
            TransformerSize::Small => (768, 12),
            TransformerSize::Medium => (1024, 24),
            TransformerSize::Large => (1536, 24),
            TransformerSize::Xl => (2048, 24),
        }
    }

    /// The full paper-scale dense config: vocab 51200, seq 1024, head 64,
    /// `ffn = 4h`.
    pub fn config(self) -> TransformerConfig {
        let (h, l) = self.dims();
        TransformerConfig {
            vocab_size: 51200,
            hidden_size: h,
            num_layers: l,
            num_heads: h / 64,
            seq_len: 1024,
            ffn_hidden_size: 4 * h,
            ffn: FfnKind::Dense,
        }
    }

    /// Weight count in millions as printed in Table 1.
    pub fn paper_weights_m(self) -> usize {
        match self {
            TransformerSize::Xs => 46,
            TransformerSize::Small => 125,
            TransformerSize::Medium => 356,
            TransformerSize::Large => 760,
            TransformerSize::Xl => 1316,
        }
    }

    /// GFLOPs as printed in Table 1.
    pub fn paper_gflops(self) -> usize {
        match self {
            TransformerSize::Xs => 316,
            TransformerSize::Small => 879,
            TransformerSize::Medium => 2487,
            TransformerSize::Large => 5122,
            TransformerSize::Xl => 8684,
        }
    }
}

/// The MoE family of Table 2: the matching Transformer size with every FFN
/// replaced by a 64-expert top-1 MoE.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MoeSize {
    /// MoE-XS — 839M weights, 316 GFLOPs.
    Xs,
    /// MoE-Small — 3693M weights, 879 GFLOPs.
    Small,
    /// MoE-Medium — 13041M weights, 2487 GFLOPs.
    Medium,
}

impl MoeSize {
    /// All Table 2 rows in order.
    pub const ALL: [MoeSize; 3] = [MoeSize::Xs, MoeSize::Small, MoeSize::Medium];

    /// The row label used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MoeSize::Xs => "XS",
            MoeSize::Small => "Small",
            MoeSize::Medium => "Medium",
        }
    }

    /// The dense row this MoE is derived from.
    pub fn base(self) -> TransformerSize {
        match self {
            MoeSize::Xs => TransformerSize::Xs,
            MoeSize::Small => TransformerSize::Small,
            MoeSize::Medium => TransformerSize::Medium,
        }
    }

    /// The paper-scale dMoE config (use
    /// [`MoeSize::config_dropping`] for the Tutel baseline).
    pub fn config_dropless(self) -> TransformerConfig {
        let mut cfg = self.base().config();
        cfg.ffn = FfnKind::Dropless(self.moe_config(&cfg));
        cfg
    }

    /// The paper-scale token-dropping config with the given capacity
    /// policy.
    pub fn config_dropping(self, capacity: CapacityFactor) -> TransformerConfig {
        let mut cfg = self.base().config();
        cfg.ffn = FfnKind::Dropping(self.moe_config(&cfg).with_capacity(capacity));
        cfg
    }

    fn moe_config(self, cfg: &TransformerConfig) -> MoeConfig {
        MoeConfig::new(cfg.hidden_size, cfg.ffn_hidden_size, 64)
    }

    /// Weight count in millions as printed in Table 2.
    pub fn paper_weights_m(self) -> usize {
        match self {
            MoeSize::Xs => 839,
            MoeSize::Small => 3693,
            MoeSize::Medium => 13041,
        }
    }

    /// GFLOPs as printed in Table 2 (equal to the dense row's).
    pub fn paper_gflops(self) -> usize {
        self.base().paper_gflops()
    }
}

/// A named model specification: either a Table 1 dense row or a Table 2
/// MoE row. Used by the benchmark harness to iterate "all paper models".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelSpec {
    /// A dense Transformer row of Table 1.
    Dense(TransformerSize),
    /// An MoE row of Table 2 (dMoE flavor).
    Moe(MoeSize),
}

impl ModelSpec {
    /// Display name, e.g. `Transformer-Small` or `dMoE-Small`.
    pub fn name(self) -> String {
        match self {
            ModelSpec::Dense(s) => format!("Transformer-{}", s.name()),
            ModelSpec::Moe(s) => format!("dMoE-{}", s.name()),
        }
    }

    /// The paper-scale configuration.
    pub fn config(self) -> TransformerConfig {
        match self {
            ModelSpec::Dense(s) => s.config(),
            ModelSpec::Moe(s) => s.config_dropless(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_weight_counts_match_paper() {
        for size in TransformerSize::ALL {
            let m = (size.config().param_count() as f64 / 1e6).round() as usize;
            let want = size.paper_weights_m();
            assert!(
                m.abs_diff(want) <= 1,
                "Table 1 {}: computed {m}M, paper says {want}M",
                size.name()
            );
        }
    }

    #[test]
    fn table1_gflops_match_paper() {
        for size in TransformerSize::ALL {
            let g = (size.config().flops_per_sequence() / 1e9).round() as usize;
            let want = size.paper_gflops();
            assert!(
                g.abs_diff(want) <= 2,
                "Table 1 {}: computed {g} GFLOPs, paper says {want}",
                size.name()
            );
        }
    }

    #[test]
    fn table2_weight_counts_match_paper() {
        for size in MoeSize::ALL {
            let m = (size.config_dropless().param_count() as f64 / 1e6).round() as usize;
            let want = size.paper_weights_m();
            assert!(
                m.abs_diff(want) <= want / 100 + 1,
                "Table 2 MoE-{}: computed {m}M, paper says {want}M",
                size.name()
            );
        }
    }

    #[test]
    fn moe_flops_equal_dense_flops() {
        for size in MoeSize::ALL {
            assert_eq!(
                size.config_dropless().flops_per_sequence(),
                size.base().config().flops_per_sequence()
            );
        }
    }

    #[test]
    fn head_size_is_64_at_paper_scale() {
        for size in TransformerSize::ALL {
            let cfg = size.config();
            assert_eq!(cfg.head_dim(), 64, "{}", size.name());
        }
    }

    #[test]
    fn tiny_config_is_consistent() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        assert_eq!(cfg.head_dim() * cfg.num_heads, cfg.hidden_size);
        assert!(cfg.param_count() > 0);
    }
}

//! Adam optimizer and gradient clipping, matching the Megatron-LM training
//! recipe the paper uses (Adam, global-norm clipping, warmup + decay LR).

use megablocks_core::Param;
use megablocks_tensor::Matrix;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style; 0 disables).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// Adam optimizer state over a fixed, ordered parameter list.
///
/// The parameter ordering must be stable across calls (which
/// `TransformerLm::params_mut` guarantees); state is allocated lazily on
/// the first step.
#[derive(Debug, Default)]
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u32,
}

impl Adam {
    /// Creates an optimizer with the given hyperparameters.
    pub fn new(cfg: AdamConfig) -> Self {
        Self {
            cfg,
            m: Vec::new(),
            v: Vec::new(),
            t: 0,
        }
    }

    /// Number of update steps taken so far.
    pub fn steps(&self) -> u32 {
        self.t
    }

    /// The optimizer state for checkpointing: `(t, m, v)`. The moment
    /// vectors are empty until the first step.
    pub fn state(&self) -> (u64, &[Matrix], &[Matrix]) {
        (u64::from(self.t), &self.m, &self.v)
    }

    /// Restores optimizer state captured by [`Adam::state`] (typically
    /// out of a v2 checkpoint). Empty moment vectors reset the optimizer
    /// to its lazily-initialized pristine state.
    ///
    /// # Panics
    ///
    /// Panics if `m` and `v` disagree in length or element shapes — a
    /// caller bug, since checkpoint loading validates shapes against the
    /// model first.
    pub fn restore(&mut self, t: u64, m: Vec<Matrix>, v: Vec<Matrix>) {
        assert_eq!(m.len(), v.len(), "moment vectors disagree in length");
        for (i, (mm, vv)) in m.iter().zip(&v).enumerate() {
            assert_eq!(
                mm.shape(),
                vv.shape(),
                "moment {i} shapes disagree between m and v"
            );
        }
        self.t = u32::try_from(t).expect("optimizer step count fits in u32");
        self.m = m;
        self.v = v;
    }

    /// Applies one Adam update at learning rate `lr` and zeroes the
    /// gradients.
    ///
    /// # Panics
    ///
    /// Panics if the parameter list changes shape or length between calls.
    pub fn step(&mut self, params: &mut [&mut Param], lr: f32) {
        if self.m.is_empty() {
            self.m = params
                .iter()
                .map(|p| Matrix::zeros(p.value().rows(), p.value().cols()))
                .collect();
            self.v = self.m.clone();
        }
        assert_eq!(self.m.len(), params.len(), "parameter list changed length");
        self.t += 1;
        let b1 = self.cfg.beta1;
        let b2 = self.cfg.beta2;
        let bias1 = 1.0 - b1.powi(self.t as i32);
        let bias2 = 1.0 - b2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            assert_eq!(p.value().shape(), m.shape(), "parameter shape changed");
            let wd = self.cfg.weight_decay;
            let eps = self.cfg.eps;
            let n = p.value().len();
            for i in 0..n {
                let g = p.grad().as_slice()[i];
                let mi = b1 * m.as_slice()[i] + (1.0 - b1) * g;
                let vi = b2 * v.as_slice()[i] + (1.0 - b2) * g * g;
                m.as_mut_slice()[i] = mi;
                v.as_mut_slice()[i] = vi;
                let mhat = mi / bias1;
                let vhat = vi / bias2;
                let w = p.value().as_slice()[i];
                p.value_mut().as_mut_slice()[i] = w - lr * (mhat / (vhat.sqrt() + eps) + wd * w);
            }
            p.zero_grad();
        }
    }
}

/// Clips gradients to a maximum global L2 norm; returns the pre-clip norm.
///
/// Matches Megatron-LM's `clip_grad_norm` (the paper trains with the
/// gradient-clipping settings of Shoeybi et al. 2019, i.e. clip at 1.0).
pub fn clip_grad_norm(params: &mut [&mut Param], max_norm: f32) -> f32 {
    let mut sq = 0.0f64;
    for p in params.iter() {
        for g in p.grad().as_slice() {
            sq += f64::from(*g) * f64::from(*g);
        }
    }
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params.iter_mut() {
            p.grad_mut().scale(scale);
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_param(x0: f32) -> Param {
        Param::new(Matrix::full(1, 1, x0))
    }

    #[test]
    fn adam_minimizes_a_quadratic() {
        // f(x) = (x - 3)^2, grad = 2(x - 3).
        let mut p = quadratic_param(0.0);
        let mut opt = Adam::new(AdamConfig::default());
        for _ in 0..400 {
            let x = p.value()[(0, 0)];
            p.grad_mut()[(0, 0)] = 2.0 * (x - 3.0);
            opt.step(&mut [&mut p], 0.05);
        }
        let x = p.value()[(0, 0)];
        assert!((x - 3.0).abs() < 0.05, "converged to {x}");
        assert_eq!(opt.steps(), 400);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut p = quadratic_param(1.0);
        p.grad_mut()[(0, 0)] = 5.0;
        let mut opt = Adam::new(AdamConfig::default());
        opt.step(&mut [&mut p], 0.1);
        assert_eq!(p.grad()[(0, 0)], 0.0);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = quadratic_param(1.0);
        let mut opt = Adam::new(AdamConfig {
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        // Zero gradient: only decay acts.
        opt.step(&mut [&mut p], 0.1);
        assert!(p.value()[(0, 0)] < 1.0);
    }

    #[test]
    fn clip_reduces_large_norms_and_keeps_small_ones() {
        let mut a = Param::new(Matrix::full(1, 2, 0.0));
        a.grad_mut().row_mut(0).copy_from_slice(&[3.0, 4.0]); // norm 5
        let norm = clip_grad_norm(&mut [&mut a], 1.0);
        assert!((norm - 5.0).abs() < 1e-5);
        let g = a.grad();
        let new_norm = (g[(0, 0)].powi(2) + g[(0, 1)].powi(2)).sqrt();
        assert!((new_norm - 1.0).abs() < 1e-5);

        let mut b = Param::new(Matrix::full(1, 1, 0.0));
        b.grad_mut()[(0, 0)] = 0.5;
        let norm = clip_grad_norm(&mut [&mut b], 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(b.grad()[(0, 0)], 0.5);
    }
}

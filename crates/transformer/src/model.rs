//! The decoder-only Transformer language model.

use megablocks_core::{MoeStats, Param};
use megablocks_tensor::ops::{cross_entropy, LayerNormCache};
use megablocks_tensor::{init, matmul, matmul_nt, matmul_tn, Matrix};
use rand::rngs::StdRng;

use crate::{Block, BlockCache, LayerNorm, TransformerConfig};

/// Per-step training statistics returned by [`TransformerLm::train_step`].
#[derive(Debug, Clone, PartialEq)]
pub struct StepStats {
    /// Cross-entropy (language-modeling) loss, mean over tokens.
    pub ce_loss: f32,
    /// Sum of the MoE load-balancing losses across layers (0 for dense).
    pub lb_loss: f32,
    /// Total dropped token-assignments across MoE layers this step.
    pub dropped_tokens: usize,
    /// Per-layer MoE statistics (empty for dense models).
    pub moe_stats: Vec<MoeStats>,
}

impl StepStats {
    /// The optimized objective: `ce_loss + lb_loss`.
    pub fn total_loss(&self) -> f32 {
        self.ce_loss + self.lb_loss
    }
}

struct ForwardCache {
    x0: Matrix,
    block_inputs_cache: Vec<BlockCache>,
    h_last: Matrix,
    ln_f: LayerNormCache,
    h_final: Matrix,
}

/// A GPT-2-style decoder-only Transformer LM with tied input/output
/// embeddings and a configurable FFN flavor per block (dense / dMoE /
/// dropping MoE).
#[derive(Debug)]
pub struct TransformerLm {
    cfg: TransformerConfig,
    wte: Param,
    wpe: Param,
    blocks: Vec<Block>,
    ln_f: LayerNorm,
}

impl TransformerLm {
    /// Builds a model from its configuration with GPT-2-style
    /// initialization.
    pub fn new(cfg: TransformerConfig, rng: &mut StdRng) -> Self {
        let wte = Param::new(init::gpt2_normal(cfg.vocab_size, cfg.hidden_size, rng));
        let wpe = Param::new(init::normal(cfg.seq_len, cfg.hidden_size, 0.01, rng));
        let blocks = (0..cfg.num_layers)
            .map(|_| {
                Block::new(
                    cfg.hidden_size,
                    cfg.num_heads,
                    cfg.ffn_hidden_size,
                    &cfg.ffn,
                    rng,
                )
            })
            .collect();
        let ln_f = LayerNorm::new(cfg.hidden_size);
        Self {
            cfg,
            wte,
            wpe,
            blocks,
            ln_f,
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &TransformerConfig {
        &self.cfg
    }

    /// All trainable parameters in a stable order, for the optimizer.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut p = vec![&mut self.wte, &mut self.wpe];
        for b in &mut self.blocks {
            p.extend(b.params_mut());
        }
        p.extend(self.ln_f.params_mut());
        p
    }

    /// Total trainable parameter count (actual, summed over live params).
    pub fn param_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.count()).sum()
    }

    /// The transformer blocks (for experiment introspection).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Embeds a token window exactly as the forward pass does (token +
    /// positional embeddings). Exposed for routing/diagnostic probes.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != batch * seq`, `seq` exceeds the model
    /// maximum, or a token is out of vocabulary.
    pub fn embed_tokens(&self, inputs: &[usize], batch: usize) -> Matrix {
        let seq = inputs.len() / batch.max(1);
        self.embed(inputs, batch, seq)
    }

    fn embed(&self, inputs: &[usize], batch: usize, seq: usize) -> Matrix {
        assert_eq!(
            inputs.len(),
            batch * seq,
            "inputs length must be batch * seq"
        );
        assert!(
            seq <= self.cfg.seq_len,
            "sequence longer than the model maximum"
        );
        let h = self.cfg.hidden_size;
        let mut x = Matrix::zeros(batch * seq, h);
        for (r, &tok) in inputs.iter().enumerate() {
            assert!(tok < self.cfg.vocab_size, "token {tok} out of vocabulary");
            let pos = r % seq;
            let dst = x.row_mut(r);
            let te = self.wte.value().row(tok);
            let pe = self.wpe.value().row(pos);
            for ((d, t), p) in dst.iter_mut().zip(te).zip(pe) {
                *d = t + p;
            }
        }
        x
    }

    fn forward_cached(&self, inputs: &[usize], batch: usize, seq: usize) -> (Matrix, ForwardCache) {
        let x0 = self.embed(inputs, batch, seq);
        let mut h = x0.clone();
        let mut caches = Vec::with_capacity(self.blocks.len());
        for block in &self.blocks {
            let (next, cache) = block.forward(&h, batch, seq);
            caches.push(cache);
            h = next;
        }
        let h_last = h;
        let (h_final, ln_f_cache) = self.ln_f.forward(&h_last);
        // Tied LM head: logits = h_final @ wte^T.
        let logits = matmul_nt(&h_final, self.wte.value());
        (
            logits,
            ForwardCache {
                x0,
                block_inputs_cache: caches,
                h_last,
                ln_f: ln_f_cache,
                h_final,
            },
        )
    }

    /// Evaluation forward pass: mean cross-entropy over the batch, no
    /// gradient accumulation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs`/`targets` lengths differ or are not
    /// `batch * seq` for some integer `seq`.
    pub fn eval_loss(&self, inputs: &[usize], targets: &[usize], batch: usize) -> f32 {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        let seq = inputs.len() / batch;
        let (logits, _) = self.forward_cached(inputs, batch, seq);
        cross_entropy(&logits, targets, None).0
    }

    /// Next-token logits for the last position of each sequence (greedy
    /// generation helper used by the examples).
    pub fn next_token_logits(&self, inputs: &[usize], batch: usize) -> Matrix {
        let seq = inputs.len() / batch;
        let (logits, _) = self.forward_cached(inputs, batch, seq);
        let mut out = Matrix::zeros(batch, self.cfg.vocab_size);
        for b in 0..batch {
            out.row_mut(b)
                .copy_from_slice(logits.row(b * seq + seq - 1));
        }
        out
    }

    /// Autoregressively generates `new_tokens` continuation tokens for a
    /// single prompt, greedily (`temperature = None`) or by sampling at
    /// the given temperature.
    ///
    /// The context is truncated to the model's maximum sequence length as
    /// it grows.
    ///
    /// # Panics
    ///
    /// Panics if the prompt is empty or contains out-of-vocabulary
    /// tokens, or if `temperature` is non-positive.
    pub fn generate(
        &self,
        prompt: &[usize],
        new_tokens: usize,
        temperature: Option<f32>,
        rng: &mut StdRng,
    ) -> Vec<usize> {
        assert!(!prompt.is_empty(), "prompt must be nonempty");
        if let Some(t) = temperature {
            assert!(t > 0.0, "temperature must be positive");
        }
        let mut context: Vec<usize> = prompt.to_vec();
        let mut out = Vec::with_capacity(new_tokens);
        for _ in 0..new_tokens {
            let window_start = context.len().saturating_sub(self.cfg.seq_len);
            let window = &context[window_start..];
            let logits = self.next_token_logits(window, 1);
            let next = match temperature {
                None => {
                    let row = logits.row(0);
                    row.iter()
                        .enumerate()
                        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                        .map(|(i, _)| i)
                        .unwrap_or(0)
                }
                Some(t) => {
                    use megablocks_tensor::ops::softmax_rows;
                    use rand::Rng;
                    let scaled = logits.map(|v| v / t);
                    let probs = softmax_rows(&scaled);
                    let mut u: f32 = rng.gen();
                    let mut pick = self.cfg.vocab_size - 1;
                    for (i, &p) in probs.row(0).iter().enumerate() {
                        if u < p {
                            pick = i;
                            break;
                        }
                        u -= p;
                    }
                    pick
                }
            };
            out.push(next);
            context.push(next);
        }
        out
    }

    /// One forward+backward pass over a micro-batch. Gradients accumulate
    /// into the parameters; the caller decides when to run the optimizer
    /// (gradient accumulation, Narayanan et al. 2021a).
    ///
    /// # Panics
    ///
    /// Panics if `inputs`/`targets` lengths differ or tokens exceed the
    /// vocabulary.
    pub fn train_step(&mut self, inputs: &[usize], targets: &[usize], batch: usize) -> StepStats {
        assert_eq!(
            inputs.len(),
            targets.len(),
            "inputs/targets length mismatch"
        );
        let seq = inputs.len() / batch;
        let (logits, cache) = self.forward_cached(inputs, batch, seq);

        let (ce_loss, d_logits) = cross_entropy(&logits, targets, None);

        // LM head backward (tied weights: the embedding gets two gradient
        // contributions — the head here, the lookup below).
        let mut d_h_final = matmul(&d_logits, self.wte.value());
        self.wte.accumulate(&matmul_tn(&d_logits, &cache.h_final));

        // Final layer norm.
        let d_h_last = self.ln_f.backward(&cache.h_last, &d_h_final, &cache.ln_f);
        d_h_final = d_h_last;

        // Blocks in reverse.
        let mut moe_stats = Vec::new();
        for (block, bc) in self.blocks.iter_mut().zip(&cache.block_inputs_cache).rev() {
            d_h_final = block.backward(bc, &d_h_final);
            if let Some(s) = &bc.moe_stats {
                moe_stats.push(s.clone());
            }
        }
        moe_stats.reverse();

        // Embedding backward.
        let _ = &cache.x0;
        for (r, &tok) in inputs.iter().enumerate() {
            let pos = r % seq;
            let g = d_h_final.row(r);
            let te = self.wte.grad_mut().row_mut(tok);
            for (d, v) in te.iter_mut().zip(g) {
                *d += v;
            }
            let pe = self.wpe.grad_mut().row_mut(pos);
            for (d, v) in pe.iter_mut().zip(g) {
                *d += v;
            }
        }

        let lb_loss: f32 = moe_stats.iter().map(|s| s.load_balancing_loss).sum();
        let dropped_tokens = moe_stats.iter().map(|s| s.dropped_tokens).sum();
        StepStats {
            ce_loss,
            lb_loss,
            dropped_tokens,
            moe_stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FfnKind;
    use megablocks_core::MoeConfig;
    use megablocks_tensor::init::seeded_rng;

    fn tiny_inputs(cfg: &TransformerConfig, batch: usize) -> (Vec<usize>, Vec<usize>) {
        let n = batch * cfg.seq_len;
        let inputs: Vec<usize> = (0..n).map(|i| (i * 7 + 3) % cfg.vocab_size).collect();
        let targets: Vec<usize> = (0..n).map(|i| (i * 7 + 10) % cfg.vocab_size).collect();
        (inputs, targets)
    }

    #[test]
    fn initial_loss_is_near_uniform() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        let mut rng = seeded_rng(1);
        let model = TransformerLm::new(cfg.clone(), &mut rng);
        let (inputs, targets) = tiny_inputs(&cfg, 2);
        let loss = model.eval_loss(&inputs, &targets, 2);
        let uniform = (cfg.vocab_size as f32).ln();
        assert!(
            (loss - uniform).abs() < 0.5,
            "initial loss {loss} should be near ln(V) = {uniform}"
        );
    }

    #[test]
    fn train_steps_reduce_loss_on_fixed_batch() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        let mut rng = seeded_rng(2);
        let mut model = TransformerLm::new(cfg.clone(), &mut rng);
        let (inputs, targets) = tiny_inputs(&cfg, 2);
        let before = model.eval_loss(&inputs, &targets, 2);
        // Plain SGD on the accumulated grads for a few steps.
        for _ in 0..20 {
            let _ = model.train_step(&inputs, &targets, 2);
            for p in model.params_mut() {
                let g = p.grad().clone();
                p.value_mut().axpy(-0.05, &g);
                p.zero_grad();
            }
        }
        let after = model.eval_loss(&inputs, &targets, 2);
        assert!(
            after < before - 0.2,
            "overfitting a fixed batch should reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn moe_model_trains_and_reports_stats() {
        let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
        let cfg = TransformerConfig::tiny(FfnKind::Dropless(moe));
        let mut rng = seeded_rng(3);
        let mut model = TransformerLm::new(cfg.clone(), &mut rng);
        let (inputs, targets) = tiny_inputs(&cfg, 2);
        let stats = model.train_step(&inputs, &targets, 2);
        assert_eq!(stats.moe_stats.len(), cfg.num_layers);
        assert!(stats.lb_loss > 0.0);
        assert_eq!(stats.dropped_tokens, 0);
        assert!(stats.total_loss() > stats.ce_loss);
    }

    #[test]
    fn param_count_agrees_with_config_formula() {
        for ffn in [
            FfnKind::Dense,
            FfnKind::Dropless(MoeConfig::new(32, 64, 4).with_block_size(8)),
        ] {
            let cfg = TransformerConfig::tiny(ffn);
            let mut rng = seeded_rng(4);
            let mut model = TransformerLm::new(cfg.clone(), &mut rng);
            assert_eq!(model.param_count(), cfg.param_count(), "{:?}", cfg.ffn);
        }
    }

    #[test]
    fn next_token_logits_shape() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        let mut rng = seeded_rng(5);
        let model = TransformerLm::new(cfg.clone(), &mut rng);
        let (inputs, _) = tiny_inputs(&cfg, 3);
        let logits = model.next_token_logits(&inputs, 3);
        assert_eq!(logits.shape(), (3, cfg.vocab_size));
    }

    #[test]
    fn generation_is_deterministic_greedy_and_seeded_sampling() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        let mut rng = seeded_rng(7);
        let model = TransformerLm::new(cfg.clone(), &mut rng);
        let prompt = vec![3usize, 5, 9];
        let a = model.generate(&prompt, 6, None, &mut seeded_rng(0));
        let b = model.generate(&prompt, 6, None, &mut seeded_rng(99));
        assert_eq!(a, b, "greedy decoding ignores the RNG");
        assert_eq!(a.len(), 6);
        assert!(a.iter().all(|&t| t < cfg.vocab_size));

        let s1 = model.generate(&prompt, 6, Some(1.0), &mut seeded_rng(1));
        let s2 = model.generate(&prompt, 6, Some(1.0), &mut seeded_rng(1));
        assert_eq!(s1, s2, "same sampling seed, same tokens");
    }

    #[test]
    fn generation_respects_context_window() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        let mut rng = seeded_rng(8);
        let model = TransformerLm::new(cfg.clone(), &mut rng);
        // Prompt longer than seq_len: must not panic (window truncation).
        let prompt: Vec<usize> = (0..cfg.seq_len * 3).map(|i| i % cfg.vocab_size).collect();
        let out = model.generate(&prompt, 4, Some(0.8), &mut seeded_rng(2));
        assert_eq!(out.len(), 4);
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn oov_token_panics() {
        let cfg = TransformerConfig::tiny(FfnKind::Dense);
        let mut rng = seeded_rng(6);
        let model = TransformerLm::new(cfg.clone(), &mut rng);
        let mut inputs = vec![0usize; 2 * cfg.seq_len];
        inputs[3] = cfg.vocab_size;
        let _ = model.eval_loss(&inputs, &inputs.clone(), 2);
    }
}

//! Transformer language-model training substrate for MegaBlocks-RS.
//!
//! This crate is the stand-in for Megatron-LM (Shoeybi et al. 2019), the
//! framework the paper builds on: a decoder-only Transformer LM with
//! pre-norm blocks, tied embeddings, causal multi-head attention, and a
//! choice of feed-forward layer per block — dense FFN (the Megatron
//! baseline), token-dropping MoE (the Tutel baseline) or the paper's
//! dropless MoE.
//!
//! It also hosts the paper's model zoo: [`TransformerSize`] reproduces
//! Table 1 (Transformer-XS through XL) and [`MoeSize`] reproduces Table 2
//! (MoE-XS/Small/Medium), including the exact weight counts and the
//! GFLOP expression from Narayanan et al. (2021b) that the captions cite.
//!
//! # Example
//!
//! ```
//! use megablocks_transformer::{FfnKind, TransformerConfig, TransformerLm};
//! use megablocks_tensor::init::seeded_rng;
//!
//! let cfg = TransformerConfig::tiny(FfnKind::Dense);
//! let mut rng = seeded_rng(0);
//! let mut model = TransformerLm::new(cfg, &mut rng);
//! let inputs = vec![1usize, 2, 3, 4, 5, 6, 7, 8];
//! let targets = vec![2usize, 3, 4, 5, 6, 7, 8, 9];
//! let stats = model.train_step(&inputs, &targets, 1);
//! assert!(stats.ce_loss > 0.0);
//! ```

#![deny(missing_docs)]

mod adam;
mod attention;
mod block;
mod config;
mod model;
mod norm;
mod resilient;
mod trainer;

pub use adam::{clip_grad_norm, Adam, AdamConfig};
pub use attention::{Attention, AttentionCache};
pub use block::{Block, BlockCache, BlockFfn};
pub use config::{
    model_flops_per_sequence, FfnKind, ModelSpec, MoeSize, TransformerConfig, TransformerSize,
};
pub use model::{StepStats, TransformerLm};
pub use norm::LayerNorm;
pub use resilient::{ResilienceConfig, ResilienceReport, ResilientTrainer, TrainAbort};
pub use trainer::{lr_at_step, EvalResult, PendingStep, TrainLog, Trainer, TrainerConfig};

//! Training loop with gradient accumulation, mirroring the paper's recipe:
//! global batch of 512 sequences split into the largest micro-batch that
//! fits in memory (Table 3), Adam with warmup + decay, gradient clipping at
//! 1.0.

use std::time::Instant;

use megablocks_data::TokenDataset;
use megablocks_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{clip_grad_norm, Adam, AdamConfig, TransformerLm};

/// Trainer hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainerConfig {
    /// Sequences per optimizer step (the paper uses 512).
    pub batch_size: usize,
    /// Sequences per forward/backward micro-step (Table 3). Must divide
    /// `batch_size`.
    pub micro_batch_size: usize,
    /// Training sequence length.
    pub seq_len: usize,
    /// Peak learning rate.
    pub lr_max: f32,
    /// Linear warmup steps.
    pub warmup_steps: usize,
    /// Total optimizer steps (for the cosine decay horizon).
    pub total_steps: usize,
    /// Global-norm gradient clip.
    pub clip: f32,
    /// Data-sampling seed.
    pub seed: u64,
}

impl TrainerConfig {
    /// A small default suitable for the scaled-down reproduction runs.
    pub fn small(total_steps: usize) -> Self {
        Self {
            batch_size: 8,
            micro_batch_size: 4,
            seq_len: 32,
            lr_max: 3e-3,
            warmup_steps: total_steps / 20 + 1,
            total_steps,
            clip: 1.0,
            seed: 0,
        }
    }
}

/// Learning rate at optimizer step `step`: linear warmup to `lr_max`, then
/// cosine decay to 10% of peak over the remaining horizon.
pub fn lr_at_step(cfg: &TrainerConfig, step: usize) -> f32 {
    if step < cfg.warmup_steps {
        return cfg.lr_max * (step + 1) as f32 / cfg.warmup_steps as f32;
    }
    let progress =
        (step - cfg.warmup_steps) as f32 / (cfg.total_steps - cfg.warmup_steps).max(1) as f32;
    let progress = progress.clamp(0.0, 1.0);
    let min = 0.1 * cfg.lr_max;
    min + 0.5 * (cfg.lr_max - min) * (1.0 + (std::f32::consts::PI * progress).cos())
}

/// One record of training progress.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainLog {
    /// Optimizer step index.
    pub step: usize,
    /// Mean cross-entropy over the step's micro-batches.
    pub ce_loss: f32,
    /// Mean load-balancing loss over the step's micro-batches.
    pub lb_loss: f32,
    /// Total dropped token-assignments in the step.
    pub dropped_tokens: usize,
    /// Worst per-layer expert load imbalance (max load over mean load)
    /// observed across the step's micro-batches — the quantity Tutel's
    /// dynamic capacity factor tracks (1.0 for dense models).
    pub max_load_imbalance: f64,
    /// Pre-clip gradient norm.
    pub grad_norm: f32,
    /// Learning rate used.
    pub lr: f32,
    /// Training throughput for the step: tokens processed per wall-clock
    /// second (`batch_size * seq_len / elapsed`).
    pub tokens_per_sec: f64,
}

/// The output of [`Trainer::accumulate_step`]: per-step statistics whose
/// gradients are sitting on the model, waiting for
/// [`Trainer::apply_step`]. Holding one of these is the window in which
/// the fault-tolerant loop validates the step (finite loss, finite
/// gradients) and can still roll it back untouched.
#[derive(Debug, Clone)]
pub struct PendingStep {
    ce_loss: f32,
    lb_loss: f32,
    dropped_tokens: usize,
    max_load_imbalance: f64,
    started: Instant,
    /// MoE-layer observations for the per-step health report.
    moe_layer_obs: usize,
    padding_rows: usize,
    kept_assignments: usize,
    total_assignments: usize,
    entropy_sum: f64,
}

impl PendingStep {
    /// Mean cross-entropy over the accumulated micro-batches.
    pub fn ce_loss(&self) -> f32 {
        self.ce_loss
    }

    /// Mean load-balancing loss over the accumulated micro-batches.
    pub fn lb_loss(&self) -> f32 {
        self.lb_loss
    }
}

/// Result of a validation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalResult {
    /// Mean cross-entropy over the evaluation batches.
    pub loss: f32,
    /// Number of batches evaluated.
    pub batches: usize,
}

/// A training harness binding a model, an optimizer and a dataset.
#[derive(Debug)]
pub struct Trainer {
    model: TransformerLm,
    optimizer: Adam,
    cfg: TrainerConfig,
    rng: StdRng,
    step: usize,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `micro_batch_size` does not divide `batch_size`.
    pub fn new(model: TransformerLm, cfg: TrainerConfig) -> Self {
        assert!(
            cfg.batch_size.is_multiple_of(cfg.micro_batch_size),
            "micro_batch_size {} must divide batch_size {}",
            cfg.micro_batch_size,
            cfg.batch_size
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            model,
            optimizer: Adam::new(AdamConfig::default()),
            cfg,
            rng,
            step: 0,
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &TransformerLm {
        &self.model
    }

    /// Mutable access to the wrapped model.
    pub fn model_mut(&mut self) -> &mut TransformerLm {
        &mut self.model
    }

    /// The trainer configuration.
    pub fn config(&self) -> &TrainerConfig {
        &self.cfg
    }

    /// Optimizer steps taken.
    pub fn step_count(&self) -> usize {
        self.step
    }

    /// Overrides the optimizer-step counter (checkpoint resume).
    pub fn set_step(&mut self, step: usize) {
        self.step = step;
    }

    /// The wrapped optimizer.
    pub fn optimizer(&self) -> &Adam {
        &self.optimizer
    }

    /// Mutable access to the wrapped optimizer (checkpoint resume).
    pub fn optimizer_mut(&mut self) -> &mut Adam {
        &mut self.optimizer
    }

    /// Raw state of the data-sampling RNG — snapshot before a step so a
    /// retry can resample the exact same batches.
    pub fn rng_state(&self) -> [u64; 4] {
        self.rng.state()
    }

    /// Restores a data-sampling RNG snapshot taken by
    /// [`Trainer::rng_state`] (step rollback or checkpoint resume).
    pub fn set_rng_state(&mut self, state: [u64; 4]) {
        self.rng = StdRng::from_state(state);
    }

    /// Zeroes every parameter gradient — a rollback discards all
    /// accumulation from an abandoned step attempt.
    pub fn zero_grads(&mut self) {
        for p in self.model.params_mut().iter_mut() {
            p.zero_grad();
        }
    }

    /// Whether every accumulated gradient element is finite. Scanned by
    /// the fault-tolerant loop between accumulation and the optimizer
    /// update, so a NaN/Inf can be rolled back before it poisons the
    /// weights.
    pub fn grads_finite(&mut self) -> bool {
        self.model
            .params_mut()
            .iter()
            .all(|p| p.grad().as_slice().iter().all(|g| g.is_finite()))
    }

    /// Runs one optimizer step (with gradient accumulation over
    /// `batch_size / micro_batch_size` micro-batches) on `train`.
    pub fn train_step(&mut self, train: &TokenDataset) -> TrainLog {
        let pending = self.accumulate_step(train);
        self.apply_step(pending)
    }

    /// Advances the data RNG past one step's batches without training —
    /// the fault-tolerant loop skips a persistently failing step this
    /// way, keeping the data stream aligned with an uninterrupted run.
    pub fn skip_step_data(&mut self, train: &TokenDataset) {
        let micro_steps = self.cfg.batch_size / self.cfg.micro_batch_size;
        for _ in 0..micro_steps {
            let _ = train.sample_batch(self.cfg.micro_batch_size, self.cfg.seq_len, &mut self.rng);
        }
    }

    /// The accumulation phase of one step: samples and runs every
    /// micro-batch, leaving summed gradients on the parameters. Nothing
    /// is mutated beyond gradients and the data RNG, so the phase can be
    /// rolled back with [`Trainer::zero_grads`] +
    /// [`Trainer::set_rng_state`] — which is exactly what the
    /// fault-tolerant loop does when it catches a worker panic or a
    /// non-finite loss before calling [`Trainer::apply_step`].
    pub fn accumulate_step(&mut self, train: &TokenDataset) -> PendingStep {
        let started = Instant::now();
        let micro_steps = self.cfg.batch_size / self.cfg.micro_batch_size;
        let mut ce = 0.0f32;
        let mut lb = 0.0f32;
        let mut dropped = 0usize;
        let mut imbalance = 1.0f64;
        let mut moe_layer_obs = 0usize;
        let mut padding_rows = 0usize;
        let mut kept_assignments = 0usize;
        let mut total_assignments = 0usize;
        let mut entropy_sum = 0.0f64;
        for _ in 0..micro_steps {
            let batch =
                train.sample_batch(self.cfg.micro_batch_size, self.cfg.seq_len, &mut self.rng);
            let stats =
                self.model
                    .train_step(&batch.inputs, &batch.targets, self.cfg.micro_batch_size);
            ce += stats.ce_loss;
            lb += stats.lb_loss;
            dropped += stats.dropped_tokens;
            for layer in &stats.moe_stats {
                imbalance =
                    imbalance.max(megablocks_core::load_imbalance(&layer.tokens_per_expert));
                moe_layer_obs += 1;
                padding_rows += layer.padding_rows;
                kept_assignments += layer.expert_load.iter().sum::<usize>();
                total_assignments += layer.tokens_per_expert.iter().sum::<usize>();
                entropy_sum += megablocks_core::count_entropy(&layer.tokens_per_expert) as f64;
            }
        }
        PendingStep {
            ce_loss: ce / micro_steps as f32,
            lb_loss: lb / micro_steps as f32,
            dropped_tokens: dropped,
            max_load_imbalance: imbalance,
            started,
            moe_layer_obs,
            padding_rows,
            kept_assignments,
            total_assignments,
            entropy_sum,
        }
    }

    /// The update phase of one step: averages the accumulated gradients,
    /// clips, applies the Adam update and advances the step counter.
    pub fn apply_step(&mut self, pending: PendingStep) -> TrainLog {
        let _span = telemetry::span("train.step");
        let PendingStep {
            ce_loss: ce,
            lb_loss: lb,
            dropped_tokens: dropped,
            max_load_imbalance: imbalance,
            started,
            moe_layer_obs,
            padding_rows,
            kept_assignments,
            total_assignments,
            entropy_sum,
        } = pending;
        let micro_steps = self.cfg.batch_size / self.cfg.micro_batch_size;

        // Average accumulated gradients over micro-steps, clip, update.
        let scale = 1.0 / micro_steps as f32;
        let mut params = self.model.params_mut();
        for p in params.iter_mut() {
            p.grad_mut().scale(scale);
        }
        let grad_norm = clip_grad_norm(&mut params, self.cfg.clip);
        let lr = lr_at_step(&self.cfg, self.step);
        self.optimizer.step(&mut params, lr);
        self.step += 1;

        let elapsed = started.elapsed();
        let tokens = self.cfg.batch_size * self.cfg.seq_len;
        let tokens_per_sec = tokens as f64 / elapsed.as_secs_f64().max(1e-9);
        telemetry::counter("train.tokens").add(tokens as u64);
        telemetry::histogram("train.step_us").record(elapsed.as_micros() as u64);
        telemetry::gauge("train.ce_loss").set(ce as f64);
        telemetry::gauge("train.lb_loss").set(lb as f64);
        telemetry::gauge("train.lr").set(lr as f64);
        telemetry::gauge("train.grad_norm").set(grad_norm as f64);
        telemetry::gauge("train.tokens_per_sec").set(tokens_per_sec);
        telemetry::event(
            "train.step",
            &[
                ("step", ((self.step - 1) as u64).into()),
                ("ce_loss", ce.into()),
                ("lb_loss", lb.into()),
                ("dropped_tokens", (dropped as u64).into()),
                ("grad_norm", grad_norm.into()),
                ("lr", lr.into()),
                ("tokens_per_sec", tokens_per_sec.into()),
            ],
        );
        if moe_layer_obs > 0 {
            // One health record per optimizer step, aggregated over every
            // MoE layer observation in the accumulated micro-batches.
            megablocks_core::health::record_step(megablocks_core::health::HealthRecord {
                step: (self.step - 1) as u64,
                imbalance,
                padding_overhead: if kept_assignments == 0 {
                    0.0
                } else {
                    padding_rows as f64 / kept_assignments as f64
                },
                drop_rate: if total_assignments == 0 {
                    0.0
                } else {
                    dropped as f64 / total_assignments as f64
                },
                router_entropy: entropy_sum / moe_layer_obs as f64,
                tokens_per_sec,
            });
        }

        TrainLog {
            step: self.step - 1,
            ce_loss: ce,
            lb_loss: lb,
            dropped_tokens: dropped,
            max_load_imbalance: imbalance,
            grad_norm,
            lr,
            tokens_per_sec,
        }
    }

    /// Trains for `steps` optimizer steps, returning the per-step logs.
    pub fn train(&mut self, train: &TokenDataset, steps: usize) -> Vec<TrainLog> {
        (0..steps).map(|_| self.train_step(train)).collect()
    }

    /// Evaluates mean validation loss over up to `max_batches` sequential
    /// batches.
    pub fn evaluate(&self, valid: &TokenDataset, max_batches: usize) -> EvalResult {
        let batches = valid.sequential_batches(self.cfg.micro_batch_size, self.cfg.seq_len);
        let n = batches.len().min(max_batches).max(1).min(batches.len());
        if batches.is_empty() {
            return EvalResult {
                loss: f32::NAN,
                batches: 0,
            };
        }
        let mut total = 0.0f32;
        for b in batches.iter().take(n) {
            total += self
                .model
                .eval_loss(&b.inputs, &b.targets, self.cfg.micro_batch_size);
        }
        EvalResult {
            loss: total / n as f32,
            batches: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FfnKind, TransformerConfig};
    use megablocks_data::{PileConfig, SyntheticPile};
    use megablocks_tensor::init::seeded_rng;

    #[test]
    fn lr_schedule_warms_up_and_decays() {
        let cfg = TrainerConfig {
            warmup_steps: 10,
            total_steps: 100,
            lr_max: 1.0,
            ..TrainerConfig::small(100)
        };
        assert!(lr_at_step(&cfg, 0) < lr_at_step(&cfg, 5));
        assert!((lr_at_step(&cfg, 9) - 1.0).abs() < 1e-6);
        assert!(lr_at_step(&cfg, 50) < 1.0);
        assert!(lr_at_step(&cfg, 99) >= 0.1 - 1e-6);
        // Past the horizon the LR floors at 10%.
        assert!((lr_at_step(&cfg, 500) - 0.1).abs() < 1e-5);
    }

    #[test]
    fn training_reduces_validation_loss() {
        let pile = SyntheticPile::generate(
            &PileConfig {
                vocab_size: 64,
                num_clusters: 4,
                num_tokens: 6_000,
                mean_doc_len: 32,
                branching: 2,
                noise: 0.05,
            },
            7,
        );
        let (train, valid) = pile.split(0.9);
        let mut model_cfg = TransformerConfig::tiny(FfnKind::Dense);
        model_cfg.seq_len = 16;
        let mut rng = seeded_rng(1);
        let model = crate::TransformerLm::new(model_cfg, &mut rng);
        let tcfg = TrainerConfig {
            batch_size: 8,
            micro_batch_size: 4,
            seq_len: 16,
            lr_max: 2e-3,
            warmup_steps: 5,
            total_steps: 60,
            clip: 1.0,
            seed: 3,
        };
        let mut trainer = Trainer::new(model, tcfg);
        let before = trainer.evaluate(&valid, 4).loss;
        let logs = trainer.train(&train, 60);
        let after = trainer.evaluate(&valid, 4).loss;
        assert!(
            after < before - 0.3,
            "validation loss should drop: {before} -> {after}"
        );
        assert_eq!(logs.len(), 60);
        assert!(logs.iter().all(|l| l.grad_norm.is_finite()));
        assert!(logs.iter().all(|l| l.tokens_per_sec > 0.0));
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn micro_batch_must_divide_batch() {
        let mut rng = seeded_rng(2);
        let model = crate::TransformerLm::new(TransformerConfig::tiny(FfnKind::Dense), &mut rng);
        let cfg = TrainerConfig {
            batch_size: 8,
            micro_batch_size: 3,
            ..TrainerConfig::small(10)
        };
        let _ = Trainer::new(model, cfg);
    }
}

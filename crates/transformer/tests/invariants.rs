//! Invariant tests for the Transformer substrate: causality, batch
//! independence, optimizer behaviour, schedule properties.

use megablocks_core::MoeConfig;
use megablocks_tensor::init::{normal, seeded_rng};
use megablocks_tensor::Matrix;
use megablocks_transformer::{
    clip_grad_norm, lr_at_step, Adam, AdamConfig, Attention, FfnKind, TrainerConfig,
    TransformerConfig, TransformerLm,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn attention_is_causal_for_any_input(seed in 0u64..100, seq in 2usize..8) {
        let mut rng = seeded_rng(seed);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal(seq, 8, 1.0, &mut rng);
        let (y, _) = attn.forward(&x, 1, seq);
        // Perturb the last position; earlier outputs must be unchanged.
        let mut x2 = x.clone();
        for j in 0..8 {
            x2[(seq - 1, j)] += 1.0;
        }
        let (y2, _) = attn.forward(&x2, 1, seq);
        for i in 0..seq - 1 {
            for j in 0..8 {
                prop_assert!((y[(i, j)] - y2[(i, j)]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn attention_batch_entries_are_independent(seed in 0u64..100) {
        let mut rng = seeded_rng(seed);
        let attn = Attention::new(8, 2, &mut rng);
        let x = normal(12, 8, 1.0, &mut rng);
        let (joint, _) = attn.forward(&x, 3, 4);
        for b in 0..3 {
            let xb = x.rows_range(b * 4, (b + 1) * 4);
            let (alone, _) = attn.forward(&xb, 1, 4);
            prop_assert!(joint.rows_range(b * 4, (b + 1) * 4).approx_eq(&alone, 1e-5));
        }
    }

    #[test]
    fn lr_schedule_is_continuous_and_bounded(
        warmup in 1usize..50,
        total in 51usize..500,
        lr_max in 1e-4f32..1e-2,
    ) {
        let cfg = TrainerConfig {
            batch_size: 8,
            micro_batch_size: 8,
            seq_len: 16,
            lr_max,
            warmup_steps: warmup,
            total_steps: total,
            clip: 1.0,
            seed: 0,
        };
        let mut prev = 0.0f32;
        for step in 0..total + 10 {
            let lr = lr_at_step(&cfg, step);
            prop_assert!(lr > 0.0 && lr <= lr_max * 1.0001, "step {step} lr {lr}");
            if step > 0 {
                // No jumps bigger than the warmup increment or a decay
                // slice (continuity up to discretization).
                prop_assert!(
                    (lr - prev).abs() <= lr_max / warmup as f32 + lr_max * 4.0 / (total - warmup).max(1) as f32 + 1e-7,
                    "discontinuity at step {step}: {prev} -> {lr}"
                );
            }
            prev = lr;
        }
        // Floor at 10% of peak after the horizon.
        prop_assert!((lr_at_step(&cfg, total * 10) - 0.1 * lr_max).abs() < 1e-6);
    }

    #[test]
    fn grad_clip_never_increases_norm(scale in 0.1f32..20.0) {
        use megablocks_core::Param;
        let mut p = Param::new(Matrix::zeros(3, 3));
        for (i, g) in p.grad_mut().as_mut_slice().iter_mut().enumerate() {
            *g = scale * ((i as f32) - 4.0);
        }
        let before: f32 = p.grad().frobenius_norm();
        let reported = clip_grad_norm(&mut [&mut p], 1.0);
        let after = p.grad().frobenius_norm();
        prop_assert!((reported - before).abs() < 1e-3 * (1.0 + before));
        prop_assert!(after <= 1.0 + 1e-4);
        prop_assert!(after <= before + 1e-6);
    }
}

#[test]
fn adam_step_is_invariant_to_gradient_scale_direction() {
    // Adam normalizes by the second moment: for a constant gradient, the
    // first step is lr-sized regardless of gradient magnitude.
    use megablocks_core::Param;
    let run = |g: f32| {
        let mut p = Param::new(Matrix::zeros(1, 1));
        let mut opt = Adam::new(AdamConfig::default());
        p.grad_mut()[(0, 0)] = g;
        opt.step(&mut [&mut p], 0.1);
        p.value()[(0, 0)]
    };
    let small = run(1e-3);
    let large = run(1e3);
    assert!((small - large).abs() < 1e-6, "{small} vs {large}");
    assert!(
        (small + 0.1).abs() < 1e-3,
        "first step should be ~ -lr, got {small}"
    );
}

#[test]
fn moe_and_dense_models_share_identical_non_ffn_parameters() {
    // Same RNG stream up to the FFN construction point is not guaranteed,
    // but parameter *counts* of non-FFN components must match exactly.
    let dense_cfg = TransformerConfig::tiny(FfnKind::Dense);
    let moe_cfg = TransformerConfig::tiny(FfnKind::Dropless(
        MoeConfig::new(32, 64, 4).with_block_size(8),
    ));
    let dense_ffn_params = 2 * 32 * 64 + 64 + 32;
    let moe_ffn_params = 32 * 4 + 4 * 2 * 32 * 64;
    assert_eq!(
        dense_cfg.param_count() - dense_cfg.num_layers * dense_ffn_params,
        moe_cfg.param_count() - moe_cfg.num_layers * moe_ffn_params,
    );
}

#[test]
fn eval_loss_does_not_mutate_the_model() {
    let cfg = TransformerConfig::tiny(FfnKind::Dense);
    let mut rng = seeded_rng(1);
    let model = TransformerLm::new(cfg.clone(), &mut rng);
    let inputs: Vec<usize> = (0..2 * cfg.seq_len).map(|i| i % cfg.vocab_size).collect();
    let targets = inputs.clone();
    let a = model.eval_loss(&inputs, &targets, 2);
    let b = model.eval_loss(&inputs, &targets, 2);
    assert_eq!(a, b, "evaluation must be pure");
}

#[test]
fn train_step_gradients_are_all_finite() {
    let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
    let cfg = TransformerConfig::tiny(FfnKind::Dropless(moe));
    let mut rng = seeded_rng(2);
    let mut model = TransformerLm::new(cfg.clone(), &mut rng);
    let inputs: Vec<usize> = (0..2 * cfg.seq_len)
        .map(|i| (i * 13) % cfg.vocab_size)
        .collect();
    let targets: Vec<usize> = (0..2 * cfg.seq_len)
        .map(|i| (i * 7) % cfg.vocab_size)
        .collect();
    let _ = model.train_step(&inputs, &targets, 2);
    for p in model.params_mut() {
        assert!(p.grad().as_slice().iter().all(|v| v.is_finite()));
    }
}

//! MegaBlocks-RS: a Rust reproduction of *MegaBlocks: Efficient Sparse
//! Training with Mixture-of-Experts* (Gale et al., MLSys 2023).
//!
//! This facade crate re-exports the whole workspace so downstream users and
//! the runnable examples only need one dependency:
//!
//! * [`tensor`] — dense matrices, GEMM, batched matmul, NN ops.
//! * [`sparse`] — block-sparse formats (hybrid blocked-CSR-COO, transpose
//!   indices) and the SDD/DSD/DDS kernels from the paper's §5.1.
//! * [`core`] — routing, permutation, the dropless-MoE (dMoE) layer and the
//!   token-dropping baselines.
//! * [`transformer`] — the Transformer-LM training substrate (Megatron-LM
//!   stand-in), model configs from Tables 1–2, Adam, trainer.
//! * [`data`] — the synthetic Pile-like corpus.
//! * [`gpusim`] — the analytic A100 performance/memory model used to
//!   regenerate the paper's throughput and end-to-end timing figures.
//! * [`exec`] — the execution runtime: the persistent worker pool every
//!   kernel launches on, the [`exec::LaunchPlan`] band abstraction, and
//!   the reusable buffer workspace. Thread count is controlled with
//!   [`exec::configure_threads`] or the `MEGABLOCKS_THREADS` environment
//!   variable.
//! * [`telemetry`] — span timers, counters, histograms and JSONL export
//!   for observing training runs (no-ops unless the `telemetry` feature is
//!   enabled).
//! * [`resilience`] — fault injection (behind the `chaos` feature) and the
//!   fault-tolerance primitives (CRC32, atomic writes, retry/backoff) the
//!   checkpoint v2 format and [`transformer::ResilientTrainer`] build on.
//! * [`serve`] — batched inference serving: a deadline-aware
//!   micro-batching engine ([`serve::Engine`]) over the dMoE
//!   inference-only path, with bounded admission and load shedding.
//!
//! # Quickstart
//!
//! ```
//! use megablocks::core::{DroplessMoe, MoeConfig};
//! use megablocks::tensor::init::seeded_rng;
//! use megablocks::tensor::Matrix;
//!
//! let cfg = MoeConfig::new(32, 64, 4).with_block_size(8);
//! let mut rng = seeded_rng(0);
//! let mut layer = DroplessMoe::new(cfg, &mut rng);
//! let tokens = megablocks::tensor::init::normal(16, 32, 1.0, &mut rng);
//! let out = layer.forward(&tokens);
//! assert_eq!(out.output.shape(), tokens.shape());
//! ```

pub use megablocks_core as core;
pub use megablocks_data as data;
pub use megablocks_exec as exec;
pub use megablocks_gpusim as gpusim;
pub use megablocks_resilience as resilience;
pub use megablocks_serve as serve;
pub use megablocks_sparse as sparse;
pub use megablocks_telemetry as telemetry;
pub use megablocks_tensor as tensor;
pub use megablocks_transformer as transformer;

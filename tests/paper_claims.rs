//! Integration tests pinning the paper's quantitative claims to the
//! reproduction (tables analytically, figures through the A100 model).
//! EXPERIMENTS.md documents each comparison in prose.

use megablocks::gpusim::memory::{
    max_micro_batch, moe_variant, paper_shape, tutel_dynamic_expansion, MemoryPolicy,
};
use megablocks::gpusim::sparse::{relative_throughput, MoeOp, MoeProblem};
use megablocks::gpusim::timeline::{train_step_time, tutel_dynamic_avg_expansion, ExecutionPolicy};
use megablocks::gpusim::DeviceSpec;
use megablocks::transformer::{MoeSize, TransformerSize};

#[test]
fn table1_and_table2_reproduce_exactly() {
    for size in TransformerSize::ALL {
        let cfg = size.config();
        assert_eq!(
            (cfg.param_count() as f64 / 1e6).round() as usize,
            size.paper_weights_m(),
            "Table 1 weights for {}",
            size.name()
        );
        assert!(
            ((cfg.flops_per_sequence() / 1e9).round() as usize).abs_diff(size.paper_gflops()) <= 2,
            "Table 1 GFLOPs for {}",
            size.name()
        );
    }
    for size in MoeSize::ALL {
        let cfg = size.config_dropless();
        let m = (cfg.param_count() as f64 / 1e6).round() as usize;
        assert!(
            m.abs_diff(size.paper_weights_m()) <= size.paper_weights_m() / 100 + 1,
            "Table 2 weights for MoE-{}: {m}",
            size.name()
        );
    }
}

#[test]
fn table3_reproduces_all_eleven_rows() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let rows: [(&str, MemoryPolicy, usize); 11] = [
        ("XS", MemoryPolicy::Dense, 64),
        ("Small", MemoryPolicy::Dense, 32),
        ("Medium", MemoryPolicy::Dense, 16),
        ("Large", MemoryPolicy::Dense, 16),
        ("XL", MemoryPolicy::Dense, 8),
        ("XS", MemoryPolicy::MegaBlocks, 64),
        ("Small", MemoryPolicy::MegaBlocks, 32),
        ("Medium", MemoryPolicy::MegaBlocks, 8),
        ("XS", MemoryPolicy::Tutel { expansion: 0.0 }, 32),
        ("Small", MemoryPolicy::Tutel { expansion: 0.0 }, 8),
        ("Medium", MemoryPolicy::Tutel { expansion: 0.0 }, 1),
    ];
    for (name, policy, want) in rows {
        let (shape, policy) = match policy {
            MemoryPolicy::Dense => (paper_shape(name).unwrap(), MemoryPolicy::Dense),
            MemoryPolicy::MegaBlocks => (
                moe_variant(paper_shape(name).unwrap()),
                MemoryPolicy::MegaBlocks,
            ),
            MemoryPolicy::Tutel { .. } => (
                moe_variant(paper_shape(name).unwrap()),
                MemoryPolicy::Tutel {
                    expansion: tutel_dynamic_expansion(name),
                },
            ),
        };
        let got = max_micro_batch(&dev, &shape, policy, 8).unwrap();
        assert_eq!(got, want, "Table 3 row {name} / {policy:?}");
    }
}

#[test]
fn figure9_summary_statistics_match_paper_bands() {
    let dev = DeviceSpec::a100_sxm4_80gb();
    let problems = [
        MoeProblem::uniform(64, 64 * 1024, 512, 2048, 128),
        MoeProblem::uniform(64, 32 * 1024, 768, 3072, 128),
        MoeProblem::uniform(64, 8 * 1024, 1024, 4096, 128),
    ];
    let mut ratios = Vec::new();
    for p in &problems {
        for op in MoeOp::ALL {
            ratios.push(relative_throughput(&dev, p, op));
        }
    }
    assert_eq!(ratios.len(), 18, "Figure 9 benchmarks 18 problems");
    let mean = ratios.iter().sum::<f64>() / 18.0;
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ratios.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    // Paper: mean 98.6%, min 91%, max 104%.
    assert!((0.95..=1.01).contains(&mean), "mean {mean}");
    assert!(min >= 0.88, "min {min}");
    assert!(max <= 1.06, "max {max}");
}

#[test]
fn figure7_speedups_grow_with_model_size() {
    // Paper: 1.38x / 2.0x / 4.35x for XS / Small / Medium.
    let dev = DeviceSpec::a100_sxm4_80gb();
    let cases = [("XS", 64usize, 32usize), ("Small", 32, 8), ("Medium", 8, 1)];
    let mut speedups = Vec::new();
    for (name, mb_mega, mb_tutel) in cases {
        let shape = moe_variant(paper_shape(name).unwrap());
        let mega = train_step_time(&dev, &shape, ExecutionPolicy::MegaBlocks, mb_mega, 512);
        let tutel = train_step_time(
            &dev,
            &shape,
            ExecutionPolicy::Tutel {
                expansion: tutel_dynamic_avg_expansion(name),
            },
            mb_tutel,
            512,
        );
        speedups.push(tutel / mega);
    }
    assert!(
        speedups.windows(2).all(|w| w[0] < w[1]),
        "speedups {speedups:?}"
    );
    assert!(speedups[0] > 1.1 && speedups[0] < 1.8, "XS {}", speedups[0]);
    assert!(
        speedups[1] > 1.4 && speedups[1] < 2.7,
        "Small {}",
        speedups[1]
    );
    assert!(
        speedups[2] > 3.0 && speedups[2] < 5.8,
        "Medium {}",
        speedups[2]
    );
}

#[test]
fn dense_transformer_flops_formula_is_the_narayanan_expression() {
    use megablocks::transformer::model_flops_per_sequence;
    // Hand-check one evaluation: Transformer-Small should be 879 GFLOPs.
    let f = model_flops_per_sequence(1024, 12, 768, 51200);
    assert!((f / 1e9 - 879.0).abs() < 1.0, "{}", f / 1e9);
}

//! Cross-crate integration tests: the dMoE layer (megablocks-core) must
//! equal the hand-assembled Figure 6 pipeline built from the router,
//! permutation and block-sparse kernels (megablocks-sparse).

use megablocks::core::{
    load_balancing_loss, padded_gather, padded_scatter, DroplessMoe, MoeConfig, PermuteInfo,
};
use megablocks::sparse::{ops, Topology};
use megablocks::tensor::init::{normal, seeded_rng};
use megablocks::tensor::ops::gelu_scalar;
use megablocks::tensor::Matrix;

fn cfg() -> MoeConfig {
    MoeConfig::new(12, 16, 4).with_block_size(4)
}

#[test]
fn dmoe_forward_equals_figure6_pipeline() {
    let mut rng = seeded_rng(11);
    let layer = DroplessMoe::new(cfg(), &mut rng);
    let x = normal(21, 12, 1.0, &mut rng);

    // The layer's answer.
    let out = layer.forward(&x);

    // Hand-assembled Figure 6: (1) route, (2) topology, (3) gather,
    // (4) SDD -> gelu -> DSD, (5) scatter * weights.
    let routing = layer.router().forward(&x);
    let permute = PermuteInfo::new(&routing, 4, layer.config().block_size);
    let topology = Topology::for_moe(
        permute.padded_tokens_per_expert(),
        layer.config().ffn_hidden_size,
        layer.config().block_size,
    )
    .expect("padded counts are aligned");
    let xg = padded_gather(&x, &permute);
    let h = ops::sdd(&xg, layer.w1().value(), &topology).map(gelu_scalar);
    let y = ops::dsd(&h, layer.w2().value());
    let manual = padded_scatter(&y, &permute, &routing.weights);

    assert!(
        out.output.approx_eq(&manual, 1e-5),
        "layer and pipeline disagree by {}",
        out.output.max_abs_diff(&manual)
    );

    // Stats agree with the routing histogram and the loss helper.
    assert_eq!(out.stats.tokens_per_expert, routing.tokens_per_expert());
    let lb = load_balancing_loss(&routing, layer.config().load_balance_weight);
    assert!((out.stats.load_balancing_loss - lb.loss).abs() < 1e-7);
}

#[test]
fn dmoe_output_is_invariant_to_block_size() {
    // The block size changes padding and kernel tiling but never values.
    let mut outs = Vec::new();
    for bs in [2usize, 4, 8, 16] {
        let mut rng = seeded_rng(5);
        let layer = DroplessMoe::new(MoeConfig::new(12, 16, 4).with_block_size(bs), &mut rng);
        let mut xrng = seeded_rng(6);
        let x = normal(19, 12, 1.0, &mut xrng);
        outs.push(layer.forward(&x).output);
    }
    for pair in outs.windows(2) {
        assert!(
            pair[0].approx_eq(&pair[1], 1e-4),
            "block size changed the math: diff {}",
            pair[0].max_abs_diff(&pair[1])
        );
    }
}

#[test]
fn dmoe_tokens_are_permutation_equivariant() {
    // Reordering input tokens reorders outputs identically (routing is
    // per-token): the permutation machinery must not leak position.
    let mut rng = seeded_rng(7);
    let layer = DroplessMoe::new(cfg(), &mut rng);
    let x = normal(16, 12, 1.0, &mut rng);
    let base = layer.forward(&x).output;

    let perm: Vec<usize> = (0..16).rev().collect();
    let xp = Matrix::from_fn(16, 12, |i, j| x[(perm[i], j)]);
    let outp = layer.forward(&xp).output;
    let expect = Matrix::from_fn(16, 12, |i, j| base[(perm[i], j)]);
    assert!(
        outp.approx_eq(&expect, 1e-4),
        "permutation equivariance violated: diff {}",
        outp.max_abs_diff(&expect)
    );
}

#[test]
fn backward_through_full_block_is_finite_and_nonzero() {
    use megablocks::transformer::{Block, FfnKind};
    let mut rng = seeded_rng(8);
    let mut block = Block::new(12, 2, 16, &FfnKind::Dropless(cfg()), &mut rng);
    let x = normal(8, 12, 1.0, &mut rng);
    let (y, cache) = block.forward(&x, 2, 4);
    assert_eq!(y.shape(), (8, 12));
    let dy = normal(8, 12, 0.5, &mut rng);
    let dx = block.backward(&cache, &dy);
    assert!(dx.as_slice().iter().all(|v| v.is_finite()));
    assert!(dx.frobenius_norm() > 0.0);
}

//! Property-based tests: every block-sparse product must agree with the
//! dense reference on arbitrary topologies, values and shapes; metadata
//! invariants must hold for every constructible topology.

use megablocks::sparse::{ops, BlockCoord, BlockSize, BlockSparseMatrix, Topology};
use megablocks::tensor::{matmul, Matrix, Trans};
use proptest::prelude::*;

/// Strategy: a random topology with block grid up to 5x6 and block size
/// 2/3/4, with each block present independently.
fn topology_strategy() -> impl Strategy<Value = Topology> {
    (
        1usize..=5,
        1usize..=6,
        prop::sample::select(vec![2usize, 3, 4]),
    )
        .prop_flat_map(|(rows, cols, bs)| {
            proptest::collection::vec(proptest::bool::ANY, rows * cols).prop_map(move |mask| {
                let blocks = mask
                    .iter()
                    .enumerate()
                    .filter(|(_, &m)| m)
                    .map(|(i, _)| BlockCoord {
                        row: i / cols,
                        col: i % cols,
                    });
                Topology::from_blocks(rows, cols, blocks, BlockSize::new(bs).expect("nonzero"))
                    .expect("in-range, unique blocks")
            })
        })
}

fn mask(m: &Matrix, topo: &Topology) -> Matrix {
    let bs = topo.block_size().get();
    Matrix::from_fn(m.rows(), m.cols(), |i, j| {
        if topo.find(i / bs, j / bs).is_some() {
            m[(i, j)]
        } else {
            0.0
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn topology_metadata_invariants(topo in topology_strategy()) {
        // Row offsets are monotone and end at nnz.
        let ro = topo.row_offsets();
        prop_assert_eq!(ro.len(), topo.block_rows() + 1);
        prop_assert!(ro.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(*ro.last().unwrap(), topo.nnz_blocks());

        // COO row indices agree with the CSR structure.
        for r in 0..topo.block_rows() {
            for k in topo.row_blocks(r) {
                prop_assert_eq!(topo.row_indices()[k], r);
            }
        }

        // Transpose indices are a permutation of storage slots that
        // enumerates blocks in column-major order.
        let mut seen = vec![false; topo.nnz_blocks()];
        let mut last = (0usize, 0usize);
        let mut first = true;
        for c in 0..topo.block_cols() {
            for k in topo.col_blocks(c) {
                prop_assert!(!seen[k], "slot visited twice");
                seen[k] = true;
                let coord = topo.coord(k);
                prop_assert_eq!(coord.col, c);
                if !first {
                    prop_assert!((coord.col, coord.row) > last, "not column-major");
                }
                last = (coord.col, coord.row);
                first = false;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));

        // Transposing twice is the identity.
        prop_assert_eq!(topo.transposed().transposed(), topo);
    }

    #[test]
    fn dense_roundtrip(topo in topology_strategy(), seed in 0u64..1000) {
        let (rows, cols) = topo.shape();
        let mut state = seed;
        let dense = Matrix::from_fn(rows, cols, |_, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        });
        let sparse = BlockSparseMatrix::from_dense(&dense, &topo).expect("shape matches");
        prop_assert!(sparse.to_dense().approx_eq(&mask(&dense, &topo), 0.0));
        // Explicit transpose equals the dense transpose.
        prop_assert!(sparse
            .explicit_transpose()
            .to_dense()
            .approx_eq(&sparse.to_dense().transpose(), 1e-6));
    }

    #[test]
    fn sdd_matches_masked_dense(
        (topo, k) in topology_strategy().prop_flat_map(|t| (Just(t), 1usize..=7)),
    ) {
        let (m, n) = topo.shape();
        let a = Matrix::from_fn(m, k, |i, j| ((i * 31 + j * 7) as f32).sin());
        let b = Matrix::from_fn(k, n, |i, j| ((i * 13 + j * 3) as f32).cos());
        let got = ops::sdd(&a, &b, &topo).to_dense();
        let want = mask(&matmul(&a, &b), &topo);
        prop_assert!(got.approx_eq(&want, 1e-4), "diff {}", got.max_abs_diff(&want));
    }

    #[test]
    fn dsd_and_dds_match_dense(
        (topo, n) in topology_strategy().prop_flat_map(|t| (Just(t), 1usize..=7)),
        vals in proptest::collection::vec(-1.5f32..1.5, 0..1),
    ) {
        let _ = vals;
        let (rows, cols) = topo.shape();
        let dense_vals = Matrix::from_fn(rows, cols, |i, j| ((i + 2 * j) as f32 * 0.37).sin());
        let s = BlockSparseMatrix::from_dense(&mask(&dense_vals, &topo), &topo).expect("shape");
        let sd = s.to_dense();

        let d = Matrix::from_fn(cols, n, |i, j| ((i * 5 + j) as f32 * 0.21).cos());
        let got = ops::dsd(&s, &d);
        prop_assert!(got.approx_eq(&matmul(&sd, &d), 1e-4));

        let d2 = Matrix::from_fn(rows, n, |i, j| ((i + j * 3) as f32 * 0.43).sin());
        let got = ops::dst_d(&s, &d2);
        prop_assert!(got.approx_eq(&matmul(&sd.transpose(), &d2), 1e-4));
        // The ablation path computes the same thing.
        let slow = ops::dst_d_explicit(&s, &d2);
        prop_assert!(got.approx_eq(&slow, 1e-4));

        let d3 = Matrix::from_fn(n, rows, |i, j| ((i * 2 + j) as f32 * 0.31).cos());
        let got = ops::dds(&d3, &s);
        prop_assert!(got.approx_eq(&matmul(&d3, &sd), 1e-4));

        let d4 = Matrix::from_fn(rows, n, |i, j| ((i + 7 * j) as f32 * 0.17).sin());
        let got = ops::ddt_s(&d4, &s);
        prop_assert!(got.approx_eq(&matmul(&d4.transpose(), &sd), 1e-4));
    }

    #[test]
    fn gemm_matches_reference_under_transposes(
        m in 1usize..8, n in 1usize..8, k in 1usize..8,
        ta in proptest::bool::ANY, tb in proptest::bool::ANY,
    ) {
        use megablocks::tensor::gemm;
        let op_a = if ta { Trans::T } else { Trans::N };
        let op_b = if tb { Trans::T } else { Trans::N };
        let a = match op_a {
            Trans::N => Matrix::from_fn(m, k, |i, j| ((i * 3 + j) as f32).sin()),
            Trans::T => Matrix::from_fn(k, m, |i, j| ((i * 3 + j) as f32).sin()),
        };
        let b = match op_b {
            Trans::N => Matrix::from_fn(k, n, |i, j| ((i + 2 * j) as f32).cos()),
            Trans::T => Matrix::from_fn(n, k, |i, j| ((i + 2 * j) as f32).cos()),
        };
        let mut c = Matrix::zeros(m, n);
        gemm(1.0, &a, op_a, &b, op_b, 0.0, &mut c);
        let ad = if ta { a.transpose() } else { a.clone() };
        let bd = if tb { b.transpose() } else { b.clone() };
        prop_assert!(c.approx_eq(&matmul(&ad, &bd), 1e-4));
    }
}

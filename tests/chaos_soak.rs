//! Chaos soak: train a dMoE language model end-to-end under a seeded
//! fault schedule covering every registered injection site, and assert
//! the run completes with the fault-free trajectory and a clean
//! checkpoint directory.
//!
//! The fault plan is process-global, so this soak owns its own
//! integration-test binary (one process, one test). Compiled only under
//! the `chaos` feature.

#![cfg(feature = "chaos")]

use std::path::PathBuf;

use megablocks::core::checkpoint::{validate_checkpoint_file, VERSION_V2};
use megablocks::core::{resilient_expert_parallel_forward, DroplessMoe, EpPolicy, MoeConfig};
use megablocks::data::{PileConfig, SyntheticPile, TokenDataset};
use megablocks::resilience::sites::{
    CHECKPOINT_IO, EP_SHARD_DELAY, EP_SHARD_FAIL, EXEC_WORKER_PANIC, KERNEL_NAN_POISON,
};
use megablocks::resilience::{clear_plan, install_plan, report, FaultPlan};
use megablocks::tensor::init::{normal, seeded_rng};
use megablocks::transformer::{
    FfnKind, ResilienceConfig, ResilientTrainer, Trainer, TrainerConfig, TransformerConfig,
    TransformerLm,
};

const STEPS: usize = 12;

fn dataset() -> (TokenDataset, TokenDataset) {
    SyntheticPile::generate(
        &PileConfig {
            vocab_size: 64,
            num_clusters: 4,
            num_tokens: 6_000,
            mean_doc_len: 32,
            branching: 2,
            noise: 0.05,
        },
        13,
    )
    .split(0.9)
}

fn trainer() -> Trainer {
    let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
    let mut cfg = TransformerConfig::tiny(FfnKind::Dropless(moe));
    cfg.seq_len = 16;
    let mut rng = seeded_rng(29);
    let model = TransformerLm::new(cfg, &mut rng);
    Trainer::new(
        model,
        TrainerConfig {
            batch_size: 8,
            micro_batch_size: 4,
            seq_len: 16,
            lr_max: 2e-3,
            warmup_steps: 3,
            total_steps: STEPS,
            clip: 1.0,
            seed: 17,
        },
    )
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbrs-chaos-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn soak_survives_every_fault_kind_and_matches_the_baseline() {
    // --- Fault-free baseline -------------------------------------------
    clear_plan();
    let (train, valid) = dataset();
    let mut baseline = trainer();
    baseline.train(&train, STEPS);
    let reference = baseline.evaluate(&valid, 4).loss;

    // --- Chaos run: all five sites scheduled ---------------------------
    // Call indices are spread out so the worker panic (step 0) is healed
    // before the NaN poisoning lands (a few steps later) — each recovery
    // path is observed on its own.
    let dir = temp_dir();
    install_plan(
        FaultPlan::seeded(41)
            .at_calls(&EXEC_WORKER_PANIC, &[2])
            .at_calls(&KERNEL_NAN_POISON, &[30])
            .at_calls(&CHECKPOINT_IO, &[0])
            .at_calls(&EP_SHARD_FAIL, &[0])
            .at_calls(&EP_SHARD_DELAY, &[1])
            .delay_ms(60),
    );

    let cfg = ResilienceConfig {
        checkpoint_dir: Some(dir.clone()),
        checkpoint_every: 4,
        keep_checkpoints: 2,
        ..ResilienceConfig::default()
    };
    let mut rt = ResilientTrainer::new(trainer(), cfg);
    rt.train(&train, STEPS)
        .expect("the soak must complete under faults");

    // Expert parallelism rides the same plan: one shard fails once and
    // is retried, one shard straggles and is detected.
    let moe = {
        let mut rng = seeded_rng(31);
        DroplessMoe::new(MoeConfig::new(6, 8, 4).with_block_size(4), &mut rng)
    };
    let x = normal(24, 6, 1.0, &mut seeded_rng(32));
    let ep_reference = moe.forward(&x).output;
    let policy = EpPolicy {
        straggler_floor_us: 5_000,
        ..EpPolicy::default()
    };
    let outcome = resilient_expert_parallel_forward(&moe, &x, 4, &policy).expect("recovers");

    // --- Every scheduled site actually injected ------------------------
    let injected = report();
    for site in [
        &EXEC_WORKER_PANIC,
        &KERNEL_NAN_POISON,
        &CHECKPOINT_IO,
        &EP_SHARD_FAIL,
        &EP_SHARD_DELAY,
    ] {
        assert!(
            injected.injected_at(site) >= 1,
            "site {} never fired: {injected:?}",
            site.name
        );
    }
    clear_plan();

    // --- Recovery evidence ---------------------------------------------
    let rep = rt.report();
    assert_eq!(rep.steps_completed, STEPS, "{rep:?}");
    assert_eq!(rep.steps_skipped, 0, "every fault must heal, not skip");
    if cfg!(feature = "sanitize") {
        // The sanitizer sweeps kernel outputs, so the NaN poison panics
        // at the op that consumes it instead of reaching the loss check:
        // both faults surface as caught worker panics.
        assert!(rep.worker_panics >= 2, "{rep:?}");
    } else {
        assert!(rep.worker_panics >= 1, "{rep:?}");
        assert!(rep.nonfinite_steps >= 1, "{rep:?}");
    }
    assert!(rep.step_retries >= 2, "{rep:?}");
    assert!(rep.checkpoints_written >= 2, "{rep:?}");
    assert_eq!(rep.checkpoint_failures, 0, "the injected I/O error retries");
    assert!(
        outcome.recovery.shards_recovered >= 1,
        "{:?}",
        outcome.recovery
    );
    assert!(
        outcome.recovery.stragglers_detected >= 1,
        "{:?}",
        outcome.recovery
    );
    assert!(!outcome.recovery.fell_back);
    assert!(outcome.output.approx_eq(&ep_reference, 1e-4));

    // --- The chaos trajectory equals the fault-free one ----------------
    let after = rt.trainer().evaluate(&valid, 4).loss;
    assert!(
        (after - reference).abs() <= 1e-3,
        "chaos run diverged from baseline: {reference} vs {after}"
    );
    assert_eq!(
        after.to_bits(),
        reference.to_bits(),
        "retries are rollback-exact, so recovery is bit-identical"
    );

    // --- No corrupt or torn file on disk -------------------------------
    let mut files = 0;
    for entry in std::fs::read_dir(&dir).expect("read checkpoint dir") {
        let path = entry.expect("dir entry").path();
        assert_eq!(
            path.extension().and_then(|e| e.to_str()),
            Some("ckpt"),
            "unexpected file in checkpoint dir: {}",
            path.display()
        );
        let version = validate_checkpoint_file(&path)
            .unwrap_or_else(|e| panic!("corrupt checkpoint {}: {e}", path.display()));
        assert_eq!(version, VERSION_V2);
        files += 1;
    }
    assert_eq!(files, 2, "pruning keeps exactly two checkpoints");
    let _ = std::fs::remove_dir_all(&dir);
}

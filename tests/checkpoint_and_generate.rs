//! Integration: checkpoint a trained dMoE LM through the facade API and
//! verify restored models generate identically.

use megablocks::core::checkpoint::{load_params, save_params};
use megablocks::core::MoeConfig;
use megablocks::data::{PileConfig, SyntheticPile};
use megablocks::tensor::init::seeded_rng;
use megablocks::transformer::{FfnKind, Trainer, TrainerConfig, TransformerConfig, TransformerLm};

fn config() -> TransformerConfig {
    let mut cfg = TransformerConfig::tiny(FfnKind::Dropless(
        MoeConfig::new(32, 64, 4).with_block_size(8),
    ));
    cfg.seq_len = 16;
    cfg
}

#[test]
fn checkpoint_roundtrip_preserves_trained_model() {
    let pile = SyntheticPile::generate(
        &PileConfig {
            vocab_size: 64,
            num_clusters: 4,
            num_tokens: 6_000,
            mean_doc_len: 32,
            branching: 2,
            noise: 0.05,
        },
        1,
    );
    let (train, valid) = pile.split(0.9);

    let mut rng = seeded_rng(2);
    let model = TransformerLm::new(config(), &mut rng);
    let mut trainer = Trainer::new(
        model,
        TrainerConfig {
            batch_size: 8,
            micro_batch_size: 4,
            seq_len: 16,
            lr_max: 2e-3,
            warmup_steps: 3,
            total_steps: 15,
            clip: 1.0,
            seed: 3,
        },
    );
    trainer.train(&train, 15);
    let trained_loss = trainer.evaluate(&valid, 4).loss;

    // Save.
    let mut buf = Vec::new();
    save_params(&trainer.model_mut().params_mut(), &mut buf).expect("save");

    // Restore into a fresh (differently initialized) model.
    let mut rng2 = seeded_rng(999);
    let mut fresh = TransformerLm::new(config(), &mut rng2);
    load_params(&mut fresh.params_mut(), buf.as_slice()).expect("load");

    // Identical evaluation loss...
    let batches = valid.sequential_batches(4, 16);
    let b = &batches[0];
    let a = trainer.model().eval_loss(&b.inputs, &b.targets, 4);
    let c = fresh.eval_loss(&b.inputs, &b.targets, 4);
    assert_eq!(a, c, "restored model must evaluate bit-identically");
    assert!(trained_loss.is_finite());

    // ...and identical generations.
    let prompt = vec![1usize, 2, 3];
    let g1 = trainer
        .model()
        .generate(&prompt, 8, Some(0.9), &mut seeded_rng(5));
    let g2 = fresh.generate(&prompt, 8, Some(0.9), &mut seeded_rng(5));
    assert_eq!(g1, g2);
}

#[test]
fn checkpoint_rejects_mismatched_transformer() {
    let mut rng = seeded_rng(4);
    let mut a = TransformerLm::new(config(), &mut rng);
    let mut buf = Vec::new();
    save_params(&a.params_mut(), &mut buf).expect("save");

    // A dense model of the same dims has a different parameter list.
    let mut dense_cfg = TransformerConfig::tiny(FfnKind::Dense);
    dense_cfg.seq_len = 16;
    let mut rng2 = seeded_rng(5);
    let mut dense = TransformerLm::new(dense_cfg, &mut rng2);
    assert!(load_params(&mut dense.params_mut(), buf.as_slice()).is_err());
}

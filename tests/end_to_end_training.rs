//! End-to-end integration: full Transformer-MoE training on the synthetic
//! Pile through the public facade API.

use megablocks::core::{CapacityFactor, MoeConfig};
use megablocks::data::{PileConfig, SyntheticPile};
use megablocks::tensor::init::seeded_rng;
use megablocks::transformer::{FfnKind, Trainer, TrainerConfig, TransformerConfig, TransformerLm};

fn pile() -> SyntheticPile {
    SyntheticPile::generate(
        &PileConfig {
            vocab_size: 64,
            num_clusters: 4,
            num_tokens: 8_000,
            mean_doc_len: 32,
            branching: 2,
            noise: 0.05,
        },
        3,
    )
}

fn model(ffn: FfnKind, seed: u64) -> TransformerLm {
    let mut cfg = TransformerConfig::tiny(ffn);
    cfg.seq_len = 16;
    let mut rng = seeded_rng(seed);
    TransformerLm::new(cfg, &mut rng)
}

fn trainer_cfg(steps: usize) -> TrainerConfig {
    TrainerConfig {
        batch_size: 8,
        micro_batch_size: 4,
        seq_len: 16,
        lr_max: 2e-3,
        warmup_steps: 5,
        total_steps: steps,
        clip: 1.0,
        seed: 21,
    }
}

#[test]
fn dmoe_lm_learns_the_synthetic_pile() {
    let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
    let p = pile();
    let (train, valid) = p.split(0.9);
    let mut t = Trainer::new(model(FfnKind::Dropless(moe), 1), trainer_cfg(50));
    let before = t.evaluate(&valid, 4).loss;
    let logs = t.train(&train, 50);
    let after = t.evaluate(&valid, 4).loss;
    assert!(
        after < before - 0.3,
        "dMoE LM failed to learn: {before} -> {after}"
    );
    assert!(
        logs.iter().all(|l| l.dropped_tokens == 0),
        "dMoE dropped tokens"
    );
    assert!(logs.iter().all(|l| l.lb_loss > 0.0));
}

#[test]
fn training_is_deterministic_for_a_fixed_seed() {
    let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
    let p = pile();
    let (train, valid) = p.split(0.9);
    let run = || {
        let mut t = Trainer::new(model(FfnKind::Dropless(moe.clone()), 2), trainer_cfg(12));
        t.train(&train, 12);
        t.evaluate(&valid, 4).loss
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed must give bit-identical training");
}

#[test]
fn dropping_and_dropless_diverge_only_through_drops() {
    // With dynamic capacity (no drops) the two formulations are the same
    // function; training them identically must produce identical losses.
    let p = pile();
    let (train, valid) = p.split(0.9);
    let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
    let run = |ffn: FfnKind| {
        let mut t = Trainer::new(model(ffn, 4), trainer_cfg(10));
        t.train(&train, 10);
        t.evaluate(&valid, 4).loss
    };
    let dropless = run(FfnKind::Dropless(moe.clone()));
    let dynamic = run(FfnKind::Dropping(
        moe.clone().with_capacity(CapacityFactor::Dynamic),
    ));
    assert!(
        (dropless - dynamic).abs() < 2e-3,
        "dropless {dropless} vs dynamic-capacity {dynamic}"
    );

    // With a tight capacity factor, drops change the function.
    let dropping = run(FfnKind::Dropping(
        moe.with_capacity(CapacityFactor::Fixed(0.5)),
    ));
    assert!(
        (dropless - dropping).abs() > 1e-4,
        "capacity 0.5 should alter training"
    );
}

#[test]
fn dense_and_moe_share_the_training_stack() {
    let p = pile();
    let (train, valid) = p.split(0.9);
    let mut t = Trainer::new(model(FfnKind::Dense, 5), trainer_cfg(30));
    let before = t.evaluate(&valid, 4).loss;
    t.train(&train, 30);
    let after = t.evaluate(&valid, 4).loss;
    assert!(after < before, "dense baseline failed to learn");
}

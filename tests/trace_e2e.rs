//! End-to-end observability acceptance: a short dMoE training run with
//! `--features telemetry` must emit a valid Chrome-trace JSON with lanes
//! for every exec worker plus kernel and step spans, and a per-step MoE
//! health report with load-imbalance and padding-overhead figures.
//!
//! ```text
//! cargo test --features telemetry --test trace_e2e
//! ```

#![cfg(feature = "telemetry")]

use std::path::PathBuf;

use megablocks::core::health;
use megablocks::core::MoeConfig;
use megablocks::data::{PileConfig, SyntheticPile};
use megablocks::telemetry;
use megablocks::telemetry::TracePhase;
use megablocks::transformer::{
    FfnKind, ResilienceConfig, ResilientTrainer, Trainer, TrainerConfig, TransformerConfig,
    TransformerLm,
};

const STEPS: usize = 4;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mbrs-trace-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

#[test]
fn dmoe_run_emits_trace_lanes_spans_and_health_report() {
    // Pin the worker pool before anything touches it: the acceptance bar
    // is one trace lane per exec worker, independent of host core count.
    megablocks::exec::configure_threads(4);
    telemetry::trace_reset();
    health::reset_health();

    // --- A short dMoE training run under the flush guard ---------------
    let dir = temp_dir();
    let export = dir.join("telemetry.jsonl");
    let (train, _valid) = SyntheticPile::generate(
        &PileConfig {
            vocab_size: 64,
            num_clusters: 4,
            num_tokens: 4_000,
            mean_doc_len: 32,
            branching: 2,
            noise: 0.05,
        },
        7,
    )
    .split(0.9);
    let moe = MoeConfig::new(32, 64, 4).with_block_size(8);
    let mut cfg = TransformerConfig::tiny(FfnKind::Dropless(moe));
    cfg.seq_len = 16;
    let mut rng = megablocks::tensor::init::seeded_rng(11);
    let model = TransformerLm::new(cfg, &mut rng);
    let trainer = Trainer::new(
        model,
        TrainerConfig {
            batch_size: 8,
            micro_batch_size: 4,
            seq_len: 16,
            lr_max: 2e-3,
            warmup_steps: 2,
            total_steps: STEPS,
            clip: 1.0,
            seed: 3,
        },
    );
    let mut rt = ResilientTrainer::new(
        trainer,
        ResilienceConfig {
            telemetry_export: Some(export.clone()),
            ..ResilienceConfig::default()
        },
    );
    let logs = rt.train(&train, STEPS).expect("training completes");
    assert_eq!(logs.len(), STEPS);
    drop(rt); // The flush guard writes the JSONL + trace artifacts.

    // --- Trace artifact: valid, lane-complete, span-complete ------------
    let trace_path = export.with_extension("trace.json");
    let src = std::fs::read_to_string(&trace_path).expect("trace flushed on drop");
    let snap = telemetry::parse_chrome_trace(&src).expect("trace is valid Chrome JSON");
    // Render → parse is the identity on what the recorder holds.
    assert_eq!(
        telemetry::parse_chrome_trace(&telemetry::render_chrome_trace(&snap)).unwrap(),
        snap
    );

    // Four-way execution: the pool spawns `threads - 1` background
    // workers and runs band 0 on the submitting thread, so a 4-thread
    // run shows three `megablocks-exec-*` lanes plus the caller's lane
    // — four lanes of kernel work in total.
    let worker_lanes: Vec<_> = snap
        .lanes
        .iter()
        .filter(|l| l.name.starts_with("megablocks-exec-"))
        .collect();
    assert!(
        worker_lanes.len() >= 3,
        "expected a lane per spawned exec worker, got {:?}",
        snap.lanes
    );
    assert!(
        snap.lanes.len() >= 4,
        "expected >= 4 execution lanes, got {:?}",
        snap.lanes
    );
    // Every worker lane actually carried events (queue waits + bands).
    for lane in &worker_lanes {
        assert!(
            snap.events.iter().any(|e| e.tid == lane.tid),
            "worker lane {} recorded no events",
            lane.name
        );
    }
    // Work really landed on >= 4 distinct lanes, not just registered.
    let active_tids: std::collections::BTreeSet<u32> = snap
        .events
        .iter()
        .filter(|e| matches!(e.phase, TracePhase::Complete { .. }))
        .map(|e| e.tid)
        .collect();
    assert!(
        active_tids.len() >= 4,
        "kernel spans landed on only {} lanes",
        active_tids.len()
    );

    let complete_names: Vec<&str> = snap
        .events
        .iter()
        .filter(|e| matches!(e.phase, TracePhase::Complete { .. }))
        .map(|e| e.name.as_str())
        .collect();
    for family in [
        "sparse.sdd",
        "moe.dmoe.forward",
        "moe.dmoe.backward",
        "train.step",
    ] {
        assert!(
            complete_names.contains(&family),
            "trace missing {family} spans; saw {:?}",
            {
                let mut u: Vec<_> = complete_names.clone();
                u.sort_unstable();
                u.dedup();
                u
            }
        );
    }
    assert!(
        complete_names.contains(&"exec.queue_wait"),
        "trace missing queue-wait accounting"
    );

    // --- Health report: one record per step, sane figures ---------------
    let records = health::health_snapshot();
    assert_eq!(records.len(), STEPS, "one health record per optimizer step");
    for r in &records {
        assert!(
            r.imbalance.is_finite() && r.imbalance >= 1.0,
            "imbalance is max/mean load, >= 1: {r:?}"
        );
        assert!(
            r.padding_overhead.is_finite() && r.padding_overhead >= 0.0,
            "padding overhead is a fraction: {r:?}"
        );
        assert!(
            (0.0..=1.0).contains(&r.drop_rate),
            "drop rate in [0,1]: {r:?}"
        );
        assert!(r.router_entropy >= 0.0, "entropy non-negative: {r:?}");
        assert!(r.tokens_per_sec > 0.0, "throughput recorded: {r:?}");
    }
    // dMoE never drops tokens.
    assert!(records.iter().all(|r| r.drop_rate == 0.0));

    // The JSON report round-trips and carries the per-step figures.
    let health_path = dir.join("health.json");
    health::export_health_json(&health_path).expect("health export");
    let back =
        health::parse_health_json(&std::fs::read_to_string(&health_path).expect("health file"))
            .expect("health JSON parses");
    assert_eq!(back, records);

    // The scalar registry flushed too.
    let jsonl = std::fs::read_to_string(&export).expect("jsonl flushed on drop");
    assert!(jsonl.contains("train.step"));

    let _ = std::fs::remove_dir_all(&dir);
}

//! Integration tests for the beyond-the-paper extensions through the
//! facade API: variable-sized experts, expert-choice routing, Sinkhorn
//! routing, and the expert-parallel execution path.

use megablocks::core::{
    expert_parallel_forward, load_imbalance, DroplessMoe, ExpertChoiceMoe, MoeConfig, Router,
    SinkhornRouter, VariableDroplessMoe, VariableMoeConfig,
};
use megablocks::tensor::init::{normal, seeded_rng};

#[test]
fn variable_experts_integrate_with_expert_parallel_intuition() {
    // A variable layer with doubling widths: the concatenated weight
    // layout must match the config's offsets.
    let cfg = VariableMoeConfig::new(8, vec![4, 8, 16], 4);
    assert_eq!(cfg.inner_dim(), 28);
    assert_eq!(cfg.ffn_offset(0), 0);
    assert_eq!(cfg.ffn_offset(1), 4);
    assert_eq!(cfg.ffn_offset(2), 12);
    let mut rng = seeded_rng(1);
    let mut layer = VariableDroplessMoe::new(cfg, &mut rng);
    let x = normal(11, 8, 1.0, &mut rng);
    let out = layer.forward(&x);
    assert_eq!(out.output.shape(), (11, 8));
    let dx = layer.backward(&out.cache, &out.output.clone());
    assert!(dx.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn expert_choice_and_token_choice_route_differently() {
    let cfg = MoeConfig::new(8, 16, 4).with_block_size(4);
    let mut r1 = seeded_rng(2);
    let token_choice = DroplessMoe::new(cfg.clone(), &mut r1);
    let mut r2 = seeded_rng(2);
    let expert_choice = ExpertChoiceMoe::new(cfg, &mut r2);
    let mut rng = seeded_rng(3);
    let x = normal(32, 8, 1.0, &mut rng);

    let tc = token_choice.forward(&x);
    let ec = expert_choice.forward(&x);
    // Expert choice is perfectly balanced; token choice generally is not.
    let tc_imb = load_imbalance(&tc.stats.tokens_per_expert);
    let ec_imb = load_imbalance(&ec.stats.tokens_per_expert);
    assert!(
        (ec_imb - 1.0).abs() < 1e-9,
        "expert choice imbalance {ec_imb}"
    );
    assert!(tc_imb >= 1.0);
}

#[test]
fn sinkhorn_router_plugs_into_the_dmoe_pipeline() {
    // The Sinkhorn router emits the same Routing type as the learned
    // router; use it to drive permutation metadata directly.
    use megablocks::core::{padded_gather, padded_scatter, PermuteInfo};
    use megablocks::sparse::BlockSize;

    let mut rng = seeded_rng(4);
    let router = SinkhornRouter::new(8, 4, 8, 1.0, &mut rng);
    let x = normal(20, 8, 1.0, &mut rng);
    let routing = router.forward(&x);
    assert_eq!(routing.expert_indices.len(), 20);

    let info = PermuteInfo::new(&routing, 4, BlockSize::new(4).unwrap());
    let g = padded_gather(&x, &info);
    let back = padded_scatter(&g, &info, &[1.0; 20]);
    assert!(
        back.approx_eq(&x, 1e-6),
        "sinkhorn routing broke the permutation"
    );
}

#[test]
fn sinkhorn_balance_beats_greedy_on_equal_weights() {
    let hidden = 12;
    let experts = 6;
    let mut r1 = seeded_rng(5);
    let greedy = Router::new(hidden, experts, 1, &mut r1);
    let mut r2 = seeded_rng(5);
    let sink = SinkhornRouter::new(hidden, experts, 10, 0.7, &mut r2);
    let mut rng = seeded_rng(6);
    // Biased inputs provoke imbalance.
    let mut x = normal(240, hidden, 1.0, &mut rng);
    for i in 0..x.rows() {
        x.row_mut(i)[0] += 1.5;
    }
    let gi = load_imbalance(&greedy.forward(&x).tokens_per_expert());
    let si = load_imbalance(&sink.forward(&x).tokens_per_expert());
    assert!(si <= gi, "sinkhorn {si} vs greedy {gi}");
}

#[test]
fn expert_parallel_matches_reference_through_facade() {
    let mut rng = seeded_rng(7);
    let layer = DroplessMoe::new(MoeConfig::new(8, 16, 4).with_block_size(4), &mut rng);
    let x = normal(23, 8, 1.0, &mut rng);
    let reference = layer.forward(&x).output;
    let (out, stats, buffers) = expert_parallel_forward(&layer, &x, 2);
    assert!(out.approx_eq(&reference, 1e-4));
    assert_eq!(stats.num_shards, 2);
    assert_eq!(buffers.shard_inputs.len(), 2);
}

//! Offline stand-in for the [`crossbeam`](https://crates.io/crates/crossbeam)
//! crate.
//!
//! The workspace only uses `crossbeam::thread::scope` + `Scope::spawn` for
//! fork-join parallelism in the matmul and block-sparse kernels. Since Rust
//! 1.63 the standard library provides the same capability via
//! [`std::thread::scope`]; this shim adapts that API to crossbeam's
//! signatures (spawn closures take the scope as an argument, and `scope`
//! returns a `Result` capturing panics) so the kernel code matches upstream
//! idiom unchanged.

/// Scoped-thread API mirroring `crossbeam::thread`.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::thread as stdthread;

    /// Error payload from a panicking scope, matching crossbeam's alias.
    pub type ScopeError = Box<dyn Any + Send + 'static>;

    /// A scope handle passed to [`scope`]'s closure and to each spawned
    /// thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope stdthread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned inside a [`Scope`].
    pub struct ScopedJoinHandle<'scope, T> {
        inner: stdthread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread inside the scope. As in crossbeam, the closure
        /// receives the scope so it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all are joined before `scope` returns. Any panic inside
    /// the scope is captured and returned as `Err`, matching crossbeam.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            stdthread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        super::thread::scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn(|_| {
                    let part: u64 = chunk.iter().sum();
                    total.fetch_add(part as usize, Ordering::Relaxed);
                });
            }
        })
        .expect("scope panicked");
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn panics_surface_as_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("worker down"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let count = AtomicUsize::new(0);
        super::thread::scope(|s| {
            s.spawn(|inner| {
                count.fetch_add(1, Ordering::Relaxed);
                inner.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            });
        })
        .expect("scope panicked");
        assert_eq!(count.load(Ordering::Relaxed), 2);
    }
}

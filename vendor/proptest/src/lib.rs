//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the subset of proptest its test suites use: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `prop_filter`, range and tuple
//! strategies, [`collection::vec`], [`bool::ANY`], [`sample::select`],
//! [`strategy::Just`], the [`proptest!`] macro (with
//! `#![proptest_config(...)]`) and the `prop_assert*` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-case seed (reproducible across runs), there is no shrinking (a
//! failing case panics with the assertion message directly), and there is
//! no failure persistence. Those features aid debugging but do not change
//! what the properties verify.

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of test values. Mirrors `proptest::strategy::Strategy`
    /// minus shrinking: `generate` produces one value per case.
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `f`, retrying with fresh draws.
        fn prop_filter<F>(self, whence: impl Into<String>, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence: whence.into(),
                f,
            }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..10_000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter gave up after 10000 rejections: {}",
                self.whence
            );
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    numeric_range_strategy!(usize, u64, u32, i64, i32, f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F2);
    tuple_strategy!(A, B, C, D, E, F2, G);
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A range of collection sizes, convertible from the size expressions
    /// proptest accepts.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    impl From<(usize, usize)> for SizeRange {
        fn from((lo, hi): (usize, usize)) -> Self {
            assert!(lo < hi, "empty size range");
            SizeRange {
                lo,
                hi_exclusive: hi,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Builds a strategy for vectors of `element` values with length in
    /// `size` (a fixed `usize`, a `Range`, or a `(min, max)` pair).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy producing uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }
}

/// Sampling strategies (`proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy choosing uniformly among a fixed set of options.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Builds a strategy that picks one of `options` uniformly.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }
}

/// Test-runner configuration and the per-test driver (`proptest::test_runner`).
pub mod test_runner {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Drives one property: generates `config.cases` values and runs the
    /// test body on each. Called by the [`proptest!`](crate::proptest)
    /// macro expansion; not part of the upstream API surface.
    pub fn run_cases<S: Strategy, F: FnMut(S::Value)>(
        config: &ProptestConfig,
        strategy: S,
        mut test: F,
    ) {
        for case in 0..config.cases as u64 {
            // Deterministic per-case seed: reproducible runs without
            // failure-persistence files.
            let mut rng = StdRng::seed_from_u64(
                0xC0FF_EE00_D15E_A5E5 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            test(strategy.generate(&mut rng));
        }
    }
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

pub use strategy::Strategy;

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// item becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $cfg:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let strategy = ($($strat,)*);
                $crate::test_runner::run_cases(&config, strategy, |($($pat,)*)| $body);
            }
        )*
    };
}

/// Asserts a condition inside a property body (panics on failure; this
/// stand-in has no shrinking phase to report to).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..=5, f in -1.5f32..1.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
            prop_assert!((-1.5..1.5).contains(&f));
        }

        #[test]
        fn combinators_compose(
            (len, v) in (1usize..6).prop_flat_map(|n| {
                (Just(n), crate::collection::vec(0usize..100, n))
            }),
            flag in crate::bool::ANY,
            pick in prop::sample::select(vec![2usize, 3, 4]),
        ) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|&e| e < 100));
            let _ = flag;
            prop_assert!([2, 3, 4].contains(&pick));
        }

        #[test]
        fn filter_applies(n in (0usize..100).prop_filter("even", |n| n % 2 == 0)) {
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }

        #[test]
        fn sized_vec_pairs(v in crate::collection::vec(0usize..5, (2, 8))) {
            prop_assert!((2..8).contains(&v.len()));
        }

        #[test]
        fn mapped_values(doubled in (0usize..50).prop_map(|n| n * 2)) {
            prop_assert_eq!(doubled % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        let mut a = Vec::new();
        crate::test_runner::run_cases(&ProptestConfig::with_cases(10), (0usize..1000,), |(v,)| {
            a.push(v)
        });
        let mut b = Vec::new();
        crate::test_runner::run_cases(&ProptestConfig::with_cases(10), (0usize..1000,), |(v,)| {
            b.push(v)
        });
        assert_eq!(a, b);
        assert!(
            a.iter().any(|&v| v != a[0]),
            "values should vary across cases"
        );
        let _ = (0usize..10).prop_map(|x| x); // exercise the re-exported trait
    }
}

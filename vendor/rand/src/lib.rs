//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to a crates
//! registry, so the workspace vendors a minimal, dependency-free
//! implementation of the exact `rand 0.8` API surface it uses:
//!
//! * [`rngs::StdRng`] — a seedable, deterministic generator
//!   (xoshiro256++ seeded through SplitMix64);
//! * [`SeedableRng::seed_from_u64`] — the only construction path the
//!   workspace uses (all randomness is explicitly seeded);
//! * [`Rng::gen`] and [`Rng::gen_range`] for `f32`/`f64`/`usize`/`u64`
//!   and half-open/inclusive ranges.
//!
//! The streams differ from upstream `rand`'s `StdRng` (which is ChaCha12),
//! but every use in the workspace is seeded and only relies on statistical
//! quality plus determinism, both of which xoshiro256++ provides.

/// A source of 64-bit random words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (byte array for [`rngs::StdRng`]).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a `u64` through SplitMix64 —
    /// the construction every experiment in this workspace uses.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native range
/// (`[0, 1)` for floats, the full domain for integers).
pub trait SampleStandard {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full float precision.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The element type produced.
    type Output;

    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty (matching upstream `rand`).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
int_range!(usize, u64, u32, i64, i32);

macro_rules! float_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as SampleStandard>::sample(rng) * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as SampleStandard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
float_range!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (`[0, 1)` for
    /// floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Upstream `rand`'s `StdRng` is ChaCha12; the streams differ but the
    /// contract the workspace relies on (seeded determinism, uniform
    /// 64-bit output) is the same.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The generator's raw internal state, for checkpointing.
        ///
        /// Not part of upstream `rand`'s API: the MegaBlocks-RS
        /// checkpoint format persists the data-sampling RNG so a resumed
        /// run replays the exact batch sequence of an uninterrupted one.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`].
        ///
        /// An all-zero state (a fixed point of xoshiro) is reseeded the
        /// same way [`SeedableRng::from_seed`] handles it.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s.iter().all(|&w| w == 0) {
                return <Self as SeedableRng>::seed_from_u64(0);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
                *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; reseed it.
            if s.iter().all(|&w| w == 0) {
                return Self::seed_from_u64(0);
            }
            Self { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-2.0f32..=2.0);
            assert!((-2.0..=2.0).contains(&f));
        }
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = rng.gen_range(5usize..5);
    }
}

//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates registry, so the workspace vendors
//! the API subset its `benches/` targets use: [`Criterion`] with
//! `sample_size` / `measurement_time` / `warm_up_time`, benchmark groups,
//! `bench_function` / `bench_with_input`, [`Throughput::Elements`],
//! [`BenchmarkId::from_parameter`], `Bencher::iter` / `iter_batched`, and
//! the `criterion_group!` / `criterion_main!` macros.
//!
//! Instead of criterion's statistical analysis it reports the median,
//! minimum and maximum wall-clock time per iteration over the configured
//! number of samples — enough to compare kernels ordinally, which is all
//! the repro benches need.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion's optimizer barrier.
pub use std::hint::black_box;

/// Top-level benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Sets the total time budget spread over the samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up duration run before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(self, id, None, f);
        self
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rates for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, self.throughput, f);
        self
    }

    /// Runs a parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(self.criterion, &full, self.throughput, |b| f(b, input));
        self
    }

    /// Ends the group (retained for API compatibility; groups have no
    /// deferred work in this stand-in).
    pub fn finish(self) {}
}

/// Identifier for one parameter point of a benchmark.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a displayable parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId(parameter.to_string())
    }

    /// Builds an id from a function name and parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Work performed per iteration, for rate reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Controls how batched setup output is grouped; this stand-in times each
/// routine invocation individually so the variants are equivalent.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
}

/// Passed to each benchmark closure to time the routine.
pub struct Bencher {
    warm_up: Duration,
    sample_size: usize,
    time_per_sample: Duration,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run untimed and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters_per_sample =
            ((self.time_per_sample.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh input from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut per_iter = f64::MAX;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            per_iter = per_iter.min(t.elapsed().as_secs_f64());
        }
        let iters_per_sample =
            ((self.time_per_sample.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.sample_size {
            let mut elapsed = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let t = Instant::now();
                black_box(routine(input));
                elapsed += t.elapsed();
            }
            self.samples
                .push(elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        warm_up: criterion.warm_up_time,
        sample_size: criterion.sample_size,
        time_per_sample: criterion.measurement_time / criterion.sample_size as u32,
        samples: Vec::with_capacity(criterion.sample_size),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples recorded)");
        return;
    }
    bencher
        .samples
        .sort_by(|a, b| a.partial_cmp(b).expect("finite sample"));
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>10.3} Melem/s", n as f64 / median * 1e3)
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  {:>10.3} MiB/s",
                n as f64 / median * 1e9 / (1024.0 * 1024.0) / 1e6
            )
        }
        None => String::new(),
    };
    println!(
        "{id:<48} time: [{} {} {}]{rate}",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Defines a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Defines the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn work(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.throughput(Throughput::Elements(64));
        g.bench_function("sum", |b| b.iter(|| (0..64u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(8), &8usize, |b, &n| {
            b.iter_batched(
                || vec![1u64; n],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 2 + 2));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        targets = work
    }

    #[test]
    fn harness_runs_and_reports() {
        benches();
    }
}

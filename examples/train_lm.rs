//! Train a small Transformer LM with dMoE FFN layers on the synthetic
//! Pile, and compare against a dense baseline — a miniature of the
//! paper's end-to-end experiments.
//!
//! Run with: `cargo run --release --example train_lm`

use megablocks::core::MoeConfig;
use megablocks::data::{PileConfig, SyntheticPile};
use megablocks::tensor::init::seeded_rng;
use megablocks::transformer::{FfnKind, Trainer, TrainerConfig, TransformerConfig, TransformerLm};

fn build(ffn: FfnKind, seed: u64) -> TransformerLm {
    let cfg = TransformerConfig {
        vocab_size: 256,
        hidden_size: 64,
        num_layers: 2,
        num_heads: 2,
        seq_len: 64,
        ffn_hidden_size: 128,
        ffn,
    };
    let mut rng = seeded_rng(seed);
    TransformerLm::new(cfg, &mut rng)
}

fn main() {
    let pile = SyntheticPile::generate(
        &PileConfig {
            vocab_size: 256,
            num_clusters: 8,
            num_tokens: 60_000,
            mean_doc_len: 64,
            branching: 4,
            noise: 0.1,
        },
        42,
    );
    let (train, valid) = pile.split(0.9);

    let tcfg = TrainerConfig {
        batch_size: 16,
        micro_batch_size: 8,
        seq_len: 64,
        lr_max: 3e-3,
        warmup_steps: 20,
        total_steps: 200,
        clip: 1.0,
        seed: 7,
    };

    let moe = MoeConfig::new(64, 128, 8).with_block_size(16);
    for (label, ffn) in [
        ("dense Transformer", FfnKind::Dense),
        ("dMoE Transformer ", FfnKind::Dropless(moe)),
    ] {
        let mut trainer = Trainer::new(build(ffn.clone(), 1), tcfg.clone());
        let before = trainer.evaluate(&valid, 8).loss;
        println!("{label}: initial val loss {before:.4}");
        for chunk in 0..4 {
            let logs = trainer.train(&train, tcfg.total_steps / 4);
            let last = logs.last().expect("nonempty");
            let val = trainer.evaluate(&valid, 8).loss;
            println!(
                "  step {:>3}  train ce {:.4}  val {:.4}  lb {:.5}  dropped {}  tok/s {:.0}",
                (chunk + 1) * tcfg.total_steps / 4,
                last.ce_loss,
                val,
                last.lb_loss,
                last.dropped_tokens,
                last.tokens_per_sec
            );
        }
        let after = trainer.evaluate(&valid, 8).loss;
        println!(
            "{label}: final val loss {after:.4} (improved {:.4})\n",
            before - after
        );
    }

    // End-of-run telemetry: kernel span timings, per-expert token histograms,
    // padding overhead, per-step training events. Prints only when built with
    // `--features telemetry`; otherwise every recording call above compiled to
    // a no-op and there is nothing to show.
    if megablocks::telemetry::is_enabled() {
        megablocks::telemetry::print_summary();
    }
}

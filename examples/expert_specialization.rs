//! Do experts specialize? The paper (§2) recalls the conjecture that MoE
//! quality gains come from experts specializing to parts of the data
//! distribution. The synthetic Pile exposes its latent document clusters,
//! so we can measure it directly: train a dMoE LM, route the corpus
//! through the first MoE layer's router, and compute the mutual
//! information between a token's cluster and its expert.
//!
//! Run with: `cargo run --release --example expert_specialization`

use megablocks::core::MoeConfig;
use megablocks::data::{PileConfig, SyntheticPile};
use megablocks::tensor::init::seeded_rng;
use megablocks::transformer::{
    BlockFfn, FfnKind, Trainer, TrainerConfig, TransformerConfig, TransformerLm,
};

/// Counts (cluster, expert) routing pairs over a slice of the corpus,
/// probing the first block's router on the model's real embeddings.
fn routing_histogram(
    model: &TransformerLm,
    pile: &SyntheticPile,
    seq: usize,
    num_experts: usize,
    num_clusters: usize,
) -> Vec<Vec<usize>> {
    let BlockFfn::Dropless(moe) = model.blocks()[0].ffn() else {
        panic!("example expects a dMoE first block");
    };
    let tokens = pile.tokens();
    let clusters = pile.cluster_of_token();
    let take = 4096.min(tokens.len());
    let windows = take / seq;
    let mut counts = vec![vec![0usize; num_experts]; num_clusters];
    for w in 0..windows {
        let start = w * seq;
        let window: Vec<usize> = tokens[start..start + seq]
            .iter()
            .map(|&t| t as usize)
            .collect();
        let x = model.embed_tokens(&window, 1);
        let routing = moe.router().forward(&x);
        for (i, &e) in routing.expert_indices.iter().enumerate() {
            counts[clusters[start + i] as usize][e] += 1;
        }
    }
    counts
}

/// Mutual information (nats) of a joint count table.
fn mutual_information(counts: &[Vec<usize>]) -> f64 {
    let total: usize = counts.iter().flatten().sum();
    if total == 0 {
        return 0.0;
    }
    let n = total as f64;
    let rows: Vec<f64> = counts
        .iter()
        .map(|r| r.iter().sum::<usize>() as f64 / n)
        .collect();
    let mut cols = vec![0.0f64; counts[0].len()];
    for r in counts {
        for (c, &v) in cols.iter_mut().zip(r) {
            *c += v as f64 / n;
        }
    }
    let mut mi = 0.0;
    for (i, r) in counts.iter().enumerate() {
        for (j, &v) in r.iter().enumerate() {
            if v > 0 {
                let p = v as f64 / n;
                mi += p * (p / (rows[i] * cols[j])).ln();
            }
        }
    }
    mi
}

fn main() {
    let pile_cfg = PileConfig {
        vocab_size: 256,
        num_clusters: 8,
        num_tokens: 80_000,
        mean_doc_len: 64,
        branching: 4,
        noise: 0.1,
    };
    let pile = SyntheticPile::generate(&pile_cfg, 11);
    let (train, valid) = pile.split(0.9);

    let moe = MoeConfig::new(64, 128, 8).with_block_size(16);
    let model_cfg = TransformerConfig {
        vocab_size: 256,
        hidden_size: 64,
        num_layers: 2,
        num_heads: 2,
        seq_len: 64,
        ffn_hidden_size: 128,
        ffn: FfnKind::Dropless(moe),
    };
    let mut rng = seeded_rng(1);
    let model = TransformerLm::new(model_cfg, &mut rng);
    let tcfg = TrainerConfig {
        batch_size: 16,
        micro_batch_size: 8,
        seq_len: 64,
        lr_max: 3e-3,
        warmup_steps: 15,
        total_steps: 150,
        clip: 1.0,
        seed: 5,
    };
    let mut trainer = Trainer::new(model, tcfg);

    let before = routing_histogram(trainer.model(), &pile, 64, 8, 8);
    println!("training 150 steps...");
    trainer.train(&train, 150);
    println!("validation loss: {:.4}", trainer.evaluate(&valid, 8).loss);
    let after = routing_histogram(trainer.model(), &pile, 64, 8, 8);

    println!("\ncluster -> expert routing histogram after training:");
    for (c, row) in after.iter().enumerate() {
        println!("  cluster {c}: {row:?}");
    }
    println!(
        "\nmutual information I(cluster; expert): before {:.4} nats, after {:.4} nats",
        mutual_information(&before),
        mutual_information(&after)
    );
    println!("(higher = experts specialized to clusters; ln(8) = 2.079 is the max)");
}

//! A tour of the block-sparse machinery: the hybrid blocked-CSR-COO
//! encoding, transpose indices, and the six matrix products of a dMoE FFN
//! layer — checked against dense references, then timed on the analytic
//! A100 model at paper scale.
//!
//! Run with: `cargo run --release --example kernel_tour`
//!
//! Every product below executes through the microkernel dispatch layer;
//! set `MEGABLOCKS_KERNEL=scalar` (or `tiled`, the default) to pick the
//! backend — the printed numbers are bit-identical either way.

use megablocks::gpusim::sparse::{moe_op_time, MoeOp, MoeProblem};
use megablocks::gpusim::DeviceSpec;
use megablocks::sparse::{ops, BlockSize, Topology};
use megablocks::tensor::init::{normal, seeded_rng};
use megablocks::tensor::{kernel_backend, matmul};

fn main() {
    println!(
        "kernel backend: {:?} (MEGABLOCKS_KERNEL or configure_kernel_backend \
         selects; scalar and tiled are bit-identical)",
        kernel_backend()
    );

    // Three experts with 2, 1 and 3 blocks of tokens (block size 4):
    // the Figure 3C block-diagonal topology.
    let block = BlockSize::new(4).expect("nonzero");
    let topo = Topology::block_diagonal(&[2, 1, 3], &[2, 2, 2], block).expect("consistent");
    println!(
        "topology: {} x {} blocks, {} nonzero",
        topo.block_rows(),
        topo.block_cols(),
        topo.nnz_blocks()
    );
    println!("  row offsets:       {:?}", topo.row_offsets());
    println!("  col indices:       {:?}", topo.col_indices());
    println!(
        "  row indices (COO): {:?}  <- O(1) coordinates for SDD workers",
        topo.row_indices()
    );
    println!(
        "  transpose indices: {:?}  <- column-major view, no data movement",
        topo.transpose_indices()
    );
    println!(
        "  metadata size:     {} bytes for {} values",
        topo.metadata_bytes(),
        topo.nnz()
    );

    // The six products of a dMoE FFN (hidden=10 for readability).
    let mut rng = seeded_rng(0);
    let (t, inner) = topo.shape();
    let hidden = 10;
    let x = normal(t, hidden, 1.0, &mut rng);
    let w1 = normal(hidden, inner, 0.3, &mut rng);
    let w2 = normal(inner, hidden, 0.3, &mut rng);
    let dy = normal(t, hidden, 1.0, &mut rng);

    let h = ops::sdd(&x, &w1, &topo);
    let y = ops::dsd(&h, &w2);
    let dh = ops::sdd_t(&dy, &w2, &topo);
    let dw2 = ops::dst_d(&h, &dy);
    let dx = ops::dsd_t(&dh, &w1);
    let dw1 = ops::ddt_s(&x, &dh);

    // Verify each against dense math.
    let hd = h.to_dense();
    println!("\nforward/backward products vs dense reference (max abs diff):");
    println!("  SDD   {:.2e}", {
        let full = matmul(&x, &w1);
        let mut masked = full.clone();
        for i in 0..masked.rows() {
            for j in 0..masked.cols() {
                if topo.find(i / 4, j / 4).is_none() {
                    masked[(i, j)] = 0.0;
                }
            }
        }
        hd.max_abs_diff(&masked)
    });
    println!("  DSD   {:.2e}", y.max_abs_diff(&matmul(&hd, &w2)));
    println!("  SDD^T {:.2e}", {
        let full = matmul(&dy, &w2.transpose());
        let mut masked = full;
        for i in 0..masked.rows() {
            for j in 0..masked.cols() {
                if topo.find(i / 4, j / 4).is_none() {
                    masked[(i, j)] = 0.0;
                }
            }
        }
        dh.to_dense().max_abs_diff(&masked)
    });
    println!(
        "  DS^TD {:.2e}",
        dw2.max_abs_diff(&matmul(&hd.transpose(), &dy))
    );
    println!(
        "  DSD^T {:.2e}",
        dx.max_abs_diff(&matmul(&dh.to_dense(), &w1.transpose()))
    );
    println!(
        "  DD^TS {:.2e}",
        dw1.max_abs_diff(&matmul(&x.transpose(), &dh.to_dense()))
    );

    // Paper-scale timing on the A100 model: MoE-XS at micro-batch 64.
    let dev = DeviceSpec::a100_sxm4_80gb();
    let problem = MoeProblem::uniform(64, 64 * 1024, 512, 2048, 128);
    println!(
        "\nA100 model, MoE-XS kernel problems ({} tokens):",
        problem.total_tokens()
    );
    for op in MoeOp::ALL {
        let time = moe_op_time(&dev, &problem, op);
        let tflops = problem.op_flops() / time / 1e12;
        println!(
            "  {:<6} {:>8.0} us  {:>6.0} TFLOP/s",
            op.label(),
            time * 1e6,
            tflops
        );
    }
}

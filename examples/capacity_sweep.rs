//! The token-dropping tradeoff in one picture: sweep the capacity factor
//! and watch drops trade against padding — the paper's §3 motivation.
//!
//! Run with: `cargo run --release --example capacity_sweep`

use megablocks::core::{CapacityFactor, DroplessMoe, DroppingMoe, MoeConfig};
use megablocks::tensor::init::{normal, seeded_rng};

fn main() {
    let hidden = 64;
    let experts = 16;
    let cfg = MoeConfig::new(hidden, 128, experts).with_block_size(16);
    let mut rng = seeded_rng(3);
    // A batch of 512 tokens. At initialization routing is imbalanced, so
    // low capacity factors drop aggressively.
    let x = normal(512, hidden, 1.0, &mut rng);

    println!("512 tokens, {experts} experts, top-1 routing\n");
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "configuration", "dropped", "padding", "moe rows"
    );
    for cf in [0.5f32, 1.0, 1.5, 2.0, 4.0] {
        let mut r = seeded_rng(9);
        let layer = DroppingMoe::new(cfg.clone().with_capacity(CapacityFactor::Fixed(cf)), &mut r);
        let out = layer.forward(&x);
        let rows = 512 - out.stats.dropped_tokens + out.stats.padding_rows;
        println!(
            "{:<22} {:>8} {:>10} {:>12}",
            format!("capacity factor {cf}"),
            out.stats.dropped_tokens,
            out.stats.padding_rows,
            rows
        );
    }
    let mut r = seeded_rng(9);
    let layer = DroppingMoe::new(cfg.clone().with_capacity(CapacityFactor::Dynamic), &mut r);
    let out = layer.forward(&x);
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "dynamic (Tutel)",
        out.stats.dropped_tokens,
        out.stats.padding_rows,
        512 - out.stats.dropped_tokens + out.stats.padding_rows
    );
    let mut r = seeded_rng(9);
    let layer = DroplessMoe::new(cfg, &mut r);
    let out = layer.forward(&x);
    println!(
        "{:<22} {:>8} {:>10} {:>12}",
        "dMoE (MegaBlocks)",
        out.stats.dropped_tokens,
        out.stats.padding_rows,
        512 - out.stats.dropped_tokens + out.stats.padding_rows
    );
    println!(
        "\nThe dropping formulation must choose between losing tokens (low cf)\n\
         and wasting rows on padding (high cf / dynamic). The dMoE pads only\n\
         to the block size, independent of the load imbalance."
    );
}

//! Quickstart: build a dropless-MoE layer, run a forward and backward
//! pass, and inspect what makes it "dropless".
//!
//! Run with: `cargo run --release --example quickstart`

use megablocks::core::{CapacityFactor, DroplessMoe, DroppingMoe, MoeConfig};
use megablocks::tensor::init::{normal, seeded_rng};
use megablocks::tensor::Matrix;

fn main() {
    // An MoE layer: hidden size 64, 8 experts with 128-wide MLPs, top-1
    // routing. The sparsity block size is 16 here (the paper-scale value
    // is 128; it must divide ffn_hidden_size).
    let cfg = MoeConfig::new(64, 128, 8).with_block_size(16);
    let mut rng = seeded_rng(0);
    let mut layer = DroplessMoe::new(cfg.clone(), &mut rng);

    // 100 tokens of 64 features. 100 is deliberately not a multiple of
    // anything interesting: the dMoE handles arbitrary, imbalanced token
    // counts by padding each expert's group to the block size.
    let x = normal(100, 64, 1.0, &mut rng);
    let out = layer.forward(&x);

    println!("output shape:        {:?}", out.output.shape());
    println!("tokens per expert:   {:?}", out.stats.tokens_per_expert);
    println!(
        "dropped tokens:      {} (always 0 for dMoE)",
        out.stats.dropped_tokens
    );
    println!("block padding rows:  {}", out.stats.padding_rows);
    println!("load-balancing loss: {:.5}", out.stats.load_balancing_loss);

    // Backward: accumulate gradients for every parameter and get the
    // input gradient back.
    let d_out = Matrix::full(100, 64, 0.01);
    let dx = layer.backward(&out.cache, &d_out);
    println!("input-gradient norm: {:.5}", dx.frobenius_norm());

    // Contrast with the token-dropping formulation at capacity factor 1:
    // the same routing decisions now overflow expert buffers.
    let mut rng2 = seeded_rng(0);
    let dropping = DroppingMoe::new(
        cfg.with_capacity(CapacityFactor::Fixed(1.0)),
        &mut rng2, // same seed -> identical weights & routing
    );
    let dropped = dropping.forward(&x);
    println!(
        "\nsame layer, token-dropping @ cf=1.0: dropped {} of 100 tokens, {} padding rows",
        dropped.stats.dropped_tokens, dropped.stats.padding_rows
    );
}
